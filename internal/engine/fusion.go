package engine

import (
	"errors"

	"blugpu/internal/columnar"
	"blugpu/internal/expr"
	"blugpu/internal/fusion"
	"blugpu/internal/gpu"
	"blugpu/internal/groupby"
	"blugpu/internal/plan"
	"blugpu/internal/sched"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// This file implements the engine's fused data path: when the optimizer
// sends a group-by to the device, the whole operator chain feeding it —
// scan/join output through consecutive filters and derives — executes as
// one device pipeline. The chain's input columns come from the
// device-resident column cache (internal/fusion), per-stage selection
// vectors and derived columns stay in device buffers allocated from one
// chain-level reservation, and the only host round-trip is the dense
// result block at chain exit.
//
// The host operators still run functionally (the simulation computes on
// host slices), so the fused path changes what is *modeled and
// accounted*: H2D traffic collapses to cache misses, D2H defers to chain
// exit, and one reservation spans the chain instead of per-operator
// reserve/release. Falling out of the fused path can happen two ways,
// with very different handling:
//
//   - decline (no room, cold cache, placement failure): not an error.
//     The group-by falls through to the staged path, byte-identical to a
//     build without fusion.
//   - mid-chain fault (injected reserve/H2D/kernel/D2H failure or a dead
//     device): the chain spills its live device intermediates back to
//     the host, releases everything, and the query resumes on the CPU
//     path — the same Section 2.1.1 fallback discipline as the staged
//     path, and still bit-identical output thanks to the canonical
//     group ordering in buildAggOutput.

// fuseFactor bounds how much colder-than-staged a chain launch may be:
// the chain fuses when the bytes it must upload (cache misses over the
// entry table's columns) do not exceed fuseFactor x the staged path's
// input transfer. Misses are an investment — the columns stay resident
// for later chains — so the factor is deliberately >1; 2.0 keeps
// first-sight fusion on for every chain whose entry is no wider than
// twice its group-by input, which empirically covers the benchmark
// workloads without regressing modeled time.
const fuseFactor = 2.0

// chainStage describes one fused pipeline stage in execution order
// (deepest first), recorded by the exec hooks as the host operators run.
type chainStage struct {
	op      string // "filter" or "derive"
	inRows  int
	outRows int
	cols    int // derived column count for "derive"
}

// chainRec is the per-query fusion chain record. The planner marks the
// plan nodes that belong to the chain and the column set they reference;
// the exec hooks then capture the chain's entry table (the deepest
// member's input) and per-stage row counts as execution descends.
type chainRec struct {
	members map[plan.Node]bool
	// needed is the union of columns the chain reads: filter predicates,
	// derive expressions, group-by keys and aggregate inputs. Only these
	// go through the device column cache (late materialization) — columns
	// the chain never touches are not uploaded.
	needed map[string]bool
	entry  *columnar.Table
	stages []chainStage
}

// member reports whether n belongs to the chain.
func (cr *chainRec) member(n plan.Node) bool { return cr != nil && cr.members[n] }

// noteEntry captures the chain's entry table: the first recording member
// is the deepest, so the first table wins.
func (cr *chainRec) noteEntry(tbl *columnar.Table) {
	if cr.entry == nil {
		cr.entry = tbl
	}
}

// planFusedChain walks the aggregate's input spine and groups the
// contiguous device-eligible span into a chain: consecutive Filter and
// Derive nodes directly feeding the group-by. Anything else — a join,
// window, project — breaks the chain and becomes the entry point (its
// output is what the chain uploads or finds resident). A bare scan entry
// yields an empty-stage chain that still fuses the upload itself.
// GPU sort entry points are recognized but not fused in this design —
// device sort runs through its own job queue (see execSort).
func planFusedChain(n *plan.Aggregate) *chainRec {
	cr := &chainRec{members: make(map[plan.Node]bool), needed: make(map[string]bool)}
	for _, k := range n.Keys {
		cr.needed[k] = true
	}
	for _, a := range n.Aggs {
		if a.Column != "" {
			cr.needed[a.Column] = true
		}
	}
	for cur := n.Input; ; {
		switch x := cur.(type) {
		case *plan.Filter:
			cr.members[x] = true
			for _, c := range expr.Columns(x.Pred) {
				cr.needed[c] = true
			}
			cur = x.Input
		case *plan.Derive:
			cr.members[x] = true
			for _, dc := range x.Cols {
				for _, c := range expr.Columns(dc.Expr) {
					cr.needed[c] = true
				}
			}
			cur = x.Input
		default:
			return cr
		}
	}
}

// fusedExec summarizes one fused chain execution for EXPLAIN ANALYZE.
type fusedExec struct {
	stages    int
	saved     int64
	uploaded  int64
	highWater int64
	// chainModeled is the chain time charged beyond the group-by's own
	// Stats.Modeled — cache fills plus the fused stage kernels. The
	// aggregate executor folds it into the operator's self time so
	// EXPLAIN ANALYZE's self-time sum still equals the query total.
	chainModeled vtime.Duration
}

// scratchBytes is the device footprint of the chain's intermediates:
// one 4-byte selection-index vector per filter stage (sized by its
// output) and 4-byte code vectors for derived columns.
func (cr *chainRec) scratchBytes() int64 {
	var b int64
	for _, st := range cr.stages {
		if st.op == "filter" {
			b += fusion.DeviceBytes(st.outRows)
		} else {
			b += fusion.DeviceBytes(st.inRows) * int64(st.cols)
		}
	}
	return b
}

// runAggregateFused attempts the group-by as a fused device chain.
// Returns (nil info, nil fusedExec, nil error) on decline — the caller
// then runs the staged path exactly as it would without fusion. A
// non-nil fusedExec with a non-nil error is a mid-chain fault: the chain
// has already spilled and released, and the caller routes to the CPU.
//
// overlap is the host evaluator-chain time the query has already been
// charged: cache fills are DMA streams that run concurrently with that
// host work (the same overlap idiom as gpu.PipelineTime), so only fill
// time in excess of the window is charged to the query. The fill bytes
// are never discounted — the H2D counters see every uploaded byte.
func (e *Engine) runAggregateFused(cr *chainRec, in *groupby.Input, demand int64, pinned bool, overlap vtime.Duration, f *frame, op trace.Context) (*groupby.Result, gpuRunInfo, *fusedExec, error) {
	var info gpuRunInfo
	if e.sched == nil || e.fcache == nil || cr == nil || cr.entry == nil || in.NumRows == 0 {
		return nil, info, nil, nil
	}
	// Late materialization: only the columns the chain reads go through
	// the cache, in entry-table column order (deterministic).
	var entryCols []columnar.Column
	for _, c := range cr.entry.Columns() {
		if cr.needed[c.Name()] {
			entryCols = append(entryCols, c)
		}
	}
	inputBytes := groupby.InputDeviceBytes(in)
	packWords := int((inputBytes + 7) / 8)
	// One reservation for the whole chain: group-by demand (packed input
	// + hash tables + result) plus the stage intermediates, with a little
	// slack for word-rounding of the packed image.
	chainDemand := demand + cr.scratchBytes() + 64

	// Cache affinity: the column cache is per-device, and the scheduler's
	// free-memory ranking would otherwise steer successive chains *away*
	// from the warm device (its resident bytes read as load). Prefer the
	// device with the fewest miss bytes for this chain's columns; ties
	// resolve to the first device, concentrating fills instead of
	// duplicating them per device.
	g := op.Begin("gpu", "fused-chain", f.at())
	var placement *sched.Placement
	var err error
	if devs := e.sched.Devices(); len(devs) > 1 {
		prefer, bestMiss := devs[0], e.fcache.MissBytes(devs[0].ID(), entryCols)
		for _, d := range devs[1:] {
			if miss := e.fcache.MissBytes(d.ID(), entryCols); miss < bestMiss {
				prefer, bestMiss = d, miss
			}
		}
		exclude := make(map[int]bool, len(devs)-1)
		for _, d := range devs {
			if d != prefer {
				exclude[d.ID()] = true
			}
		}
		placement, err = e.sched.TryPlaceExcludingTraced(g, f.at(), chainDemand, exclude)
		if placement == nil {
			// Preferred device declined; widen to the fleet. The swallowed
			// failure is recorded as a place retry — exactly what the
			// scheduler does when it moves down its own candidate ranking —
			// so an injected reservation fault stays paired with one
			// handling in the monitor's ledger.
			e.mon.RecordGPURetry("place", errors.Is(err, gpu.ErrInjected))
		}
	}
	if placement == nil {
		placement, err = e.sched.TryPlaceExcludingTraced(g, f.at(), chainDemand, nil)
	}
	if err != nil {
		// Resident cache bytes must never starve live queries: purge and
		// retry once.
		if e.fcache.PurgeAll() > 0 {
			e.mon.RecordGPURetry("place", errors.Is(err, gpu.ErrInjected))
			placement, err = e.sched.TryPlaceExcludingTraced(g, f.at(), chainDemand, nil)
		}
		if err != nil {
			// A terminal injected fault must surface as a faulted CPU
			// fallback (the staged path's discipline); declining to the
			// staged path would leave it unhandled. Non-faulted failures
			// (busy fleet, demand too large) decline to the smaller staged
			// demand.
			if errors.Is(err, gpu.ErrInjected) {
				g.End(f.at(), trace.Str("error", err.Error()))
				return nil, info, nil, err
			}
			g.End(f.at(), trace.Str("decline", err.Error()))
			return nil, info, nil, nil
		}
	}
	dev := placement.Device()
	res := placement.Reservation()
	res.BindSpan(g.ID())

	// Fuse/decline policy: how cold is the cache for this chain's entry
	// columns on the chosen device?
	if miss := e.fcache.MissBytes(dev.ID(), entryCols); float64(miss) > fuseFactor*float64(inputBytes) {
		placement.Release()
		g.End(f.at(), trace.Int("device", int64(dev.ID())),
			trace.Str("decline", "cold-cache"), trace.Int("miss_bytes", miss))
		return nil, info, nil, nil
	}

	// Committed to the fused attempt from here on.
	info.attempts++
	info.devices = append(info.devices, dev.ID())
	fx := &fusedExec{stages: len(cr.stages)}

	// Track live chain intermediates for spill-on-fault.
	var live []*gpu.Buffer
	fault := func(cause error) (*groupby.Result, gpuRunInfo, *fusedExec, error) {
		// Break the chain cleanly: spill the live device intermediates to
		// host scratch, then release the chain's claims. The spill is a
		// direct host copy, not a CopyFromDevice — the device is already
		// failing, and routing the rescue copies through the fault
		// injector would fire faults with no retry/fallback to pair them
		// with, breaking the monitor's one-fault-one-handling ledger. The
		// spilled volume is recorded on the chain span instead.
		var spilled int64
		for _, b := range live {
			scratch := make([]uint64, b.Len())
			copy(scratch, b.Words())
			spilled += b.Bytes()
		}
		placement.Release()
		if errors.Is(cause, gpu.ErrInjected) {
			e.sched.ReportFailure(dev)
		}
		g.End(f.at(), trace.Int("device", int64(dev.ID())),
			trace.Int("spill_bytes", spilled), trace.Str("error", cause.Error()))
		return nil, info, fx, cause
	}

	// Acquire the chain's input columns on the device: hits pin resident
	// entries, misses upload through the cache (reserve + H2D under this
	// chain's span).
	lease, err := e.fcache.Ensure(dev, entryCols, g.ID(), e.model, true, e.cfg.Degree)
	if err != nil {
		if errors.Is(err, gpu.ErrInjected) {
			return fault(err)
		}
		// No room even after eviction: decline, staged may still fit.
		placement.Release()
		g.End(f.at(), trace.Int("device", int64(dev.ID())), trace.Str("decline", err.Error()))
		info = gpuRunInfo{}
		return nil, info, nil, nil
	}
	defer lease.Release()
	fx.saved, fx.uploaded = lease.Saved, lease.Uploaded

	// Run the chain stages on-device: each stage writes its intermediate
	// (selection vector / derived codes) into the chain reservation and
	// charges streaming time over its input rows.
	var stageT vtime.Duration
	runStage := func(name string, words int, work float64) error {
		if words > 0 {
			buf, err := res.AllocWords(words)
			if err != nil {
				return err
			}
			live = append(live, buf)
		}
		kr := dev.RunKernelSpan(name, g.ID(), nil, func(_ *gpu.Grid) (vtime.Duration, error) {
			if work <= 0 {
				return 0, nil
			}
			return vtime.Duration(work / e.model.GPUScanRate), nil
		})
		if kr.Err != nil {
			return kr.Err
		}
		stageT += kr.Modeled
		return nil
	}
	for _, st := range cr.stages {
		switch st.op {
		case "filter":
			if err := runStage("fused_filter", int(fusion.DeviceBytes(st.outRows)/8), float64(st.inRows)); err != nil {
				return fault(err)
			}
		case "derive":
			words := int(fusion.DeviceBytes(st.inRows)/8) * st.cols
			if err := runStage("fused_derive", words, float64(st.inRows*st.cols)); err != nil {
				return fault(err)
			}
		}
	}
	// Pack the surviving rows into the group-by's compressed input layout
	// (keys + payload codes) — the fused replacement for the staged
	// path's host-side MEMCPY + H2D upload.
	if err := runStage("fused_pack", packWords, float64(in.NumRows)); err != nil {
		return fault(err)
	}

	out, err := groupby.RunGPU(in, res, e.model, groupby.GPUOptions{
		Race:   e.cfg.Race,
		Pinned: pinned,
		Fused:  true,
	})
	if err != nil {
		return fault(err)
	}
	fx.highWater = res.Used()
	placement.Release()
	e.sched.ReportSuccess(dev)
	fill := lease.Modeled - overlap
	if fill < 0 {
		fill = 0
	}
	fx.chainModeled = fill + stageT
	total := fx.chainModeled + out.Stats.Modeled
	e.mon.RecordMemSample(dev.ID(), vtime.Time(f.modeled.Seconds()), chainDemand, dev.TotalMemory())
	// The DES profile keeps the group-by's own demand (not the chain
	// total) so concurrency replay and the ROLAP memory calibration see
	// the same per-query footprint with fusion on or off.
	e.addGPU(f, total, demand)
	e.mon.RecordMemSample(dev.ID(), vtime.Time(f.modeled.Seconds()), 0, dev.TotalMemory())
	e.mon.RecordFusedChain(lease.Saved, lease.Uploaded)
	g.End(f.at(),
		trace.Int("device", int64(dev.ID())),
		trace.Str("kernel", out.Stats.Kernel),
		trace.Int("fused", 1),
		trace.Int("stages", int64(fx.stages)),
		trace.Int("saved_bytes", fx.saved),
		trace.Int("upload_bytes", fx.uploaded),
		trace.Int("high_water", fx.highWater))
	return out, info, fx, nil
}

// FusionEnabled reports whether the fused data path is active.
func (e *Engine) FusionEnabled() bool { return e.fcache != nil }

// FusionCache exposes the device-resident column cache, nil when fusion
// is disabled.
func (e *Engine) FusionCache() *fusion.Cache { return e.fcache }
