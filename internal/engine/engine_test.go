package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"blugpu/internal/columnar"
	"blugpu/internal/optimizer"
)

// newTestEngine builds an engine with 2 GPUs and a small sales schema.
func newTestEngine(t *testing.T, rows int) *Engine {
	t.Helper()
	e, err := New(Config{Devices: 2, Degree: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Fact table: sales.
	sk := columnar.NewInt64Builder("s_store_sk")
	month := columnar.NewInt64Builder("s_month")
	qty := columnar.NewInt64Builder("s_qty")
	price := columnar.NewFloat64Builder("s_price")
	for i := 0; i < rows; i++ {
		sk.Append(int64(i % 10))
		month.Append(int64(i%12 + 1))
		if i%20 == 19 {
			qty.AppendNull()
		} else {
			qty.Append(int64(i%7 + 1))
		}
		price.Append(float64(i%100) + 0.5)
	}
	sales := columnar.MustNewTable("sales", sk.Build(), month.Build(), qty.Build(), price.Build())
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}
	// Dimension table: stores.
	dk := columnar.NewInt64Builder("st_store_sk")
	name := columnar.NewStringBuilder("st_name")
	region := columnar.NewStringBuilder("st_region")
	regions := []string{"east", "west"}
	for i := 0; i < 10; i++ {
		dk.Append(int64(i))
		name.Append(fmt.Sprintf("store-%d", i))
		region.Append(regions[i%2])
	}
	stores := columnar.MustNewTable("stores", dk.Build(), name.Build(), region.Build())
	if err := e.Register(stores); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRegisterValidation(t *testing.T) {
	e, _ := New(Config{})
	if err := e.Register(nil); err == nil {
		t.Error("nil table should error")
	}
	b := columnar.NewInt64Builder("x")
	b.Append(1)
	tbl := columnar.MustNewTable("t", b.Build())
	if err := e.Register(tbl); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(tbl); err == nil {
		t.Error("duplicate registration should error")
	}
	if e.Table("t") == nil || e.Stats("t") == nil {
		t.Error("table and stats should be registered")
	}
}

func TestSelectStarLimit(t *testing.T) {
	e := newTestEngine(t, 100)
	res, err := e.Query("SELECT * FROM sales LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 7 || res.Table.NumColumns() != 4 {
		t.Errorf("result %dx%d", res.Table.Rows(), res.Table.NumColumns())
	}
	if res.Modeled <= 0 {
		t.Error("modeled time missing")
	}
}

func TestFilterQuery(t *testing.T) {
	e := newTestEngine(t, 120)
	res, err := e.Query("SELECT s_month FROM sales WHERE s_month = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 10 { // 120 rows, 12 months
		t.Errorf("rows = %d, want 10", res.Table.Rows())
	}
	col := res.Table.Column("s_month").(*columnar.Int64Column)
	for i := 0; i < col.Len(); i++ {
		if col.Int64(i) != 3 {
			t.Fatalf("row %d = %d, want 3", i, col.Int64(i))
		}
	}
}

func TestGroupByCPUPath(t *testing.T) {
	// Small row count stays under T1: CPU path.
	e := newTestEngine(t, 1200)
	res, err := e.Query("SELECT s_month, SUM(s_qty) AS total, COUNT(*) AS cnt FROM sales GROUP BY s_month")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 12 {
		t.Fatalf("groups = %d, want 12", res.Table.Rows())
	}
	if res.GPUUsed {
		t.Error("1200 rows must stay on the CPU (T1)")
	}
	// Verify against a reference computation.
	sales := e.Table("sales")
	wantSum := map[int64]int64{}
	wantCnt := map[int64]int64{}
	m := sales.Column("s_month").(*columnar.Int64Column)
	q := sales.Column("s_qty").(*columnar.Int64Column)
	for i := 0; i < sales.Rows(); i++ {
		wantCnt[m.Int64(i)]++
		if !q.IsNull(i) {
			wantSum[m.Int64(i)] += q.Int64(i)
		}
	}
	gm := res.Table.Column("s_month").(*columnar.Int64Column)
	gt := res.Table.Column("total").(*columnar.Int64Column)
	gc := res.Table.Column("cnt").(*columnar.Int64Column)
	for g := 0; g < res.Table.Rows(); g++ {
		mo := gm.Int64(g)
		if gt.Int64(g) != wantSum[mo] {
			t.Errorf("month %d: total = %d, want %d", mo, gt.Int64(g), wantSum[mo])
		}
		if gc.Int64(g) != wantCnt[mo] {
			t.Errorf("month %d: cnt = %d, want %d", mo, gc.Int64(g), wantCnt[mo])
		}
	}
}

func TestGroupByGPUPath(t *testing.T) {
	// 120k rows with 12x10 groups clears T1/T2: GPU path.
	e := newTestEngine(t, 120_000)
	res, err := e.Query("SELECT s_month, s_store_sk, SUM(s_qty) AS total FROM sales GROUP BY s_month, s_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	if !res.GPUUsed {
		t.Error("120k-row group-by should offload")
	}
	if res.Table.Rows() != 60 {
		t.Errorf("groups = %d, want 60 (lcm of 12 months x 10 stores)", res.Table.Rows())
	}
	var gpuOp *OpStat
	for i := range res.Ops {
		if res.Ops[i].Op == "groupby" {
			gpuOp = &res.Ops[i]
		}
	}
	if gpuOp == nil || !strings.HasPrefix(gpuOp.Detail, "gpu/") {
		t.Errorf("groupby op = %+v", gpuOp)
	}
	// GPU-on and GPU-off agree.
	e.SetGPUEnabled(false)
	base, err := e.Query("SELECT s_month, s_store_sk, SUM(s_qty) AS total FROM sales GROUP BY s_month, s_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	if base.GPUUsed {
		t.Error("disabled GPU must not be used")
	}
	if !sameGroups(t, res.Table, base.Table, []string{"s_month", "s_store_sk"}, "total") {
		t.Error("GPU and CPU paths disagree")
	}
}

// sameGroups compares two grouped results independent of row order.
func sameGroups(t *testing.T, a, b *columnar.Table, keys []string, agg string) bool {
	t.Helper()
	index := func(tbl *columnar.Table) map[string]string {
		out := map[string]string{}
		for r := 0; r < tbl.Rows(); r++ {
			var k, v strings.Builder
			for _, kc := range keys {
				fmt.Fprintf(&k, "%v|", tbl.Column(kc).Value(r))
			}
			fmt.Fprintf(&v, "%v", tbl.Column(agg).Value(r))
			out[k.String()] = v.String()
		}
		return out
	}
	ia, ib := index(a), index(b)
	if len(ia) != len(ib) {
		return false
	}
	for k, v := range ia {
		if ib[k] != v {
			return false
		}
	}
	return true
}

func TestJoinGroupBySort(t *testing.T) {
	e := newTestEngine(t, 2400)
	res, err := e.Query(`SELECT st_region, SUM(s_qty) AS total, AVG(s_price) AS avgp
		FROM sales JOIN stores ON s_store_sk = st_store_sk
		GROUP BY st_region ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 2 {
		t.Fatalf("regions = %d, want 2", res.Table.Rows())
	}
	tot := res.Table.Column("total").(*columnar.Int64Column)
	if tot.Int64(0) < tot.Int64(1) {
		t.Error("ORDER BY total DESC violated")
	}
	avgp := res.Table.Column("avgp").(*columnar.Float64Column)
	for i := 0; i < 2; i++ {
		if avgp.Float64(i) <= 0 || math.IsNaN(avgp.Float64(i)) {
			t.Errorf("avgp[%d] = %v", i, avgp.Float64(i))
		}
	}
}

func TestHavingFilter(t *testing.T) {
	e := newTestEngine(t, 1200)
	all, err := e.Query("SELECT s_month, COUNT(*) AS cnt FROM sales GROUP BY s_month")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT s_month, COUNT(*) AS cnt FROM sales GROUP BY s_month HAVING cnt > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if all.Table.Rows() != 12 || res.Table.Rows() != 0 {
		t.Errorf("having filter: %d -> %d rows", all.Table.Rows(), res.Table.Rows())
	}
}

func TestAvgMatchesSumOverCount(t *testing.T) {
	e := newTestEngine(t, 600)
	res, err := e.Query(`SELECT s_month, SUM(s_price) AS sp, COUNT(s_price) AS cp, AVG(s_price) AS ap
		FROM sales GROUP BY s_month`)
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Table.Column("sp").(*columnar.Float64Column)
	cp := res.Table.Column("cp").(*columnar.Int64Column)
	ap := res.Table.Column("ap").(*columnar.Float64Column)
	for g := 0; g < res.Table.Rows(); g++ {
		want := sp.Float64(g) / float64(cp.Int64(g))
		if math.Abs(ap.Float64(g)-want) > 1e-9 {
			t.Errorf("group %d: avg = %v, want %v", g, ap.Float64(g), want)
		}
	}
}

func TestOrderByStringAndLimit(t *testing.T) {
	e := newTestEngine(t, 200)
	res, err := e.Query(`SELECT st_name, st_region FROM stores ORDER BY st_region, st_name DESC LIMIT 4`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 4 {
		t.Fatalf("rows = %d", res.Table.Rows())
	}
	rg := res.Table.Column("st_region").(*columnar.StringColumn)
	nm := res.Table.Column("st_name").(*columnar.StringColumn)
	for i := 1; i < 4; i++ {
		a, b := rg.Value(i-1).S, rg.Value(i).S
		if a > b {
			t.Errorf("region order broken: %s > %s", a, b)
		}
		if a == b && nm.Value(i-1).S < nm.Value(i).S {
			t.Errorf("name DESC broken within region")
		}
	}
}

func TestRankWindow(t *testing.T) {
	e := newTestEngine(t, 1200)
	res, err := e.Query(`SELECT s_month, SUM(s_qty) AS total,
		RANK() OVER (ORDER BY total DESC) AS rnk
		FROM sales GROUP BY s_month ORDER BY rnk`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 12 {
		t.Fatalf("rows = %d", res.Table.Rows())
	}
	rnk := res.Table.Column("rnk").(*columnar.Int64Column)
	tot := res.Table.Column("total").(*columnar.Int64Column)
	if rnk.Int64(0) != 1 {
		t.Errorf("first rank = %d, want 1", rnk.Int64(0))
	}
	for i := 1; i < 12; i++ {
		if tot.Int64(i) > tot.Int64(i-1) {
			t.Error("rank order violates total DESC")
		}
		if rnk.Int64(i) < rnk.Int64(i-1) {
			t.Error("ranks must be non-decreasing in rank order")
		}
		if tot.Int64(i) == tot.Int64(i-1) && rnk.Int64(i) != rnk.Int64(i-1) {
			t.Error("ties must share rank")
		}
	}
}

func TestArithmeticProjection(t *testing.T) {
	e := newTestEngine(t, 60)
	res, err := e.Query("SELECT s_qty * 2 + 1 AS z FROM sales WHERE s_qty = 3 LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	z := res.Table.Column("z").(*columnar.Int64Column)
	if z.Int64(0) != 7 {
		t.Errorf("3*2+1 = %d", z.Int64(0))
	}
}

func TestAggregateOverExpression(t *testing.T) {
	e := newTestEngine(t, 240)
	res, err := e.Query("SELECT s_month, SUM(s_qty * 10) AS t10, SUM(s_qty) AS t1 FROM sales GROUP BY s_month")
	if err != nil {
		t.Fatal(err)
	}
	t10 := res.Table.Column("t10").(*columnar.Int64Column)
	t1 := res.Table.Column("t1").(*columnar.Int64Column)
	for g := 0; g < res.Table.Rows(); g++ {
		if t10.Int64(g) != 10*t1.Int64(g) {
			t.Errorf("group %d: %d != 10*%d", g, t10.Int64(g), t1.Int64(g))
		}
	}
}

func TestUnknownTableAndColumns(t *testing.T) {
	e := newTestEngine(t, 10)
	if _, err := e.Query("SELECT x FROM nope"); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := e.Query("SELECT nope FROM sales"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := e.Query("SELECT s_qty FROM sales JOIN stores ON s_store_sk = missing_col"); err == nil {
		t.Error("bad join column should error")
	}
}

func TestProfilePhases(t *testing.T) {
	e := newTestEngine(t, 120_000)
	res, err := e.Query("SELECT s_month, s_store_sk, SUM(s_qty) AS t FROM sales GROUP BY s_month, s_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	var hasCPU, hasGPU bool
	for _, p := range res.Profile.Phases {
		switch p.Kind {
		case 0:
			hasCPU = true
		case 1:
			hasGPU = true
			if p.Mem <= 0 {
				t.Error("GPU phase must hold memory")
			}
		}
	}
	if !hasCPU || !hasGPU {
		t.Errorf("profile should mix CPU and GPU phases: %+v", res.Profile.Phases)
	}
	// Profile serial time roughly matches modeled time.
	if math.Abs(res.Profile.SerialSeconds()-res.Modeled.Seconds()) > res.Modeled.Seconds()*0.25+1e-6 {
		t.Errorf("profile serial %.6f vs modeled %.6f", res.Profile.SerialSeconds(), res.Modeled.Seconds())
	}
}

func TestGPUOffloadFasterOnBigGroupBy(t *testing.T) {
	e := newTestEngine(t, 400_000)
	sql := "SELECT s_month, s_store_sk, SUM(s_qty) AS t, MIN(s_price) AS mn, MAX(s_price) AS mx FROM sales GROUP BY s_month, s_store_sk"
	gpuRes, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	e.SetGPUEnabled(false)
	cpuRes, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	e.SetGPUEnabled(true)
	if !gpuRes.GPUUsed || cpuRes.GPUUsed {
		t.Fatal("offload toggling broken")
	}
	if gpuRes.Modeled >= cpuRes.Modeled {
		t.Errorf("GPU-on (%v) should beat GPU-off (%v) on a 400k-row group-by", gpuRes.Modeled, cpuRes.Modeled)
	}
}

func TestSmallQueryPrefersCPUEvenWithGPU(t *testing.T) {
	e := newTestEngine(t, 5000)
	res, err := e.Query("SELECT s_month, COUNT(*) AS c FROM sales GROUP BY s_month")
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUUsed {
		t.Error("small query should stay on CPU per Figure 3")
	}
}

func TestThresholdOverride(t *testing.T) {
	// Force everything to the GPU with tiny thresholds.
	e, err := New(Config{Devices: 1, Degree: 8, Thresholds: optimizer.Thresholds{
		T1Rows: 1, T2Groups: 0, T3Rows: 1 << 40,
	}})
	if err != nil {
		t.Fatal(err)
	}
	b := columnar.NewInt64Builder("k")
	v := columnar.NewInt64Builder("v")
	for i := 0; i < 500; i++ {
		b.Append(int64(i % 25))
		v.Append(int64(i))
	}
	if err := e.Register(columnar.MustNewTable("t", b.Build(), v.Build())); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT k, SUM(v) AS s FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if !res.GPUUsed {
		t.Error("T1=1 should force the GPU path")
	}
	if res.Table.Rows() != 25 {
		t.Errorf("groups = %d", res.Table.Rows())
	}
}
