package engine

import (
	"context"
	"fmt"

	"blugpu/internal/explain"
	"blugpu/internal/gpu"
	"blugpu/internal/plan"
	"blugpu/internal/prof"
	"blugpu/internal/qlog"
	"blugpu/internal/sqlparse"
	"blugpu/internal/trace"
)

// monTotals is a point-in-time snapshot of the monitor counters the
// explain report reconciles. Subtracting two snapshots taken around one
// query yields that query's Totals. Only valid for single-query use:
// concurrent queries on the same engine would interleave their deltas.
type monTotals struct {
	kernels       uint64
	transfers     uint64
	transferBytes int64
	retries       uint64
	placeRetries  uint64
	fallbacks     uint64
	faults        uint64
}

func (e *Engine) monTotals() monTotals {
	var t monTotals
	for _, k := range e.mon.Kernels() {
		t.kernels += k.Count
	}
	h2d, d2h := e.mon.Transfers()
	t.transfers = h2d.Count + d2h.Count
	t.transferBytes = h2d.Bytes + d2h.Bytes
	for _, r := range e.mon.Retries() {
		if r.Op == "place" {
			t.placeRetries += r.Count
		} else {
			t.retries += r.Count
		}
	}
	for _, fb := range e.mon.Fallbacks() {
		t.fallbacks += fb.Count
	}
	t.faults = e.mon.FaultTotal()
	return t
}

func (t monTotals) sub(o monTotals) explain.Totals {
	return explain.Totals{
		Kernels:       t.kernels - o.kernels,
		Transfers:     t.transfers - o.transfers,
		TransferBytes: t.transferBytes - o.transferBytes,
		Retries:       t.retries - o.retries,
		PlaceRetries:  t.placeRetries - o.placeRetries,
		Fallbacks:     t.fallbacks - o.fallbacks,
		Faults:        t.faults - o.faults,
	}
}

// ExplainAnalyze runs sql and returns the decision audit: the plan-time
// prognosis next to what actually ran, reconciled against the span tree
// and the monitor counters.
func (e *Engine) ExplainAnalyze(sql string) (*explain.Report, error) {
	rep, _, err := e.ExplainAnalyzeNamed("", sql)
	return rep, err
}

// ExplainAnalyzeNamed is ExplainAnalyze under an explicit query name
// (empty picks the tracer's automatic "q<N>"). It also returns the
// query result, which the shell prints below the audit.
//
// A tracer is required for span attribution; when none is attached the
// engine installs a temporary one for the duration of the call and
// detaches it afterwards.
func (e *Engine) ExplainAnalyzeNamed(name, sql string) (*explain.Report, *Result, error) {
	return e.ExplainAnalyzeNamedCtx(context.Background(), name, sql)
}

// ExplainAnalyzeNamedCtx is ExplainAnalyzeNamed under a caller context:
// cancellation aborts the audited query between operators exactly as it
// does for QueryCtx. The audited epoch — monitor deltas, the hostmem
// watermark reset, the temporary tracer — is serialized on an
// engine-level mutex, so concurrent ExplainAnalyze calls queue rather
// than corrupt each other's per-query deltas. Plain queries running
// concurrently still pollute the deltas; for an exact audit run it
// alone.
func (e *Engine) ExplainAnalyzeNamedCtx(ctx context.Context, name, sql string) (*explain.Report, *Result, error) {
	var stmt *sqlparse.SelectStmt
	parseWall, err := prof.Phase(ctx, "parse", func(ctx context.Context) error {
		var perr error
		stmt, perr = sqlparse.Parse(sql)
		return perr
	})
	if err != nil {
		return nil, nil, err
	}
	var p *plan.Plan
	planWall, err := prof.Phase(ctx, "plan", func(ctx context.Context) error {
		var perr error
		p, perr = plan.Build(stmt)
		return perr
	})
	if err != nil {
		return nil, nil, err
	}

	e.explainMu.Lock()
	defer e.explainMu.Unlock()

	// The exec phase covers everything the serving layer bills to exec
	// for an explain request: the audited execution plus the report
	// build. Its duration lands in res.Wall.Exec so the query log and
	// the prof accountant agree.
	var (
		rep *explain.Report
		res *Result
	)
	execWall, err := prof.Phase(ctx, "exec", func(ctx context.Context) error {
		tr := e.tracer.Load()
		if tr == nil {
			tr = trace.New()
			e.tracer.Store(tr)
			defer e.tracer.Store(nil)
		}
		col := explain.NewCollector(e.prognoses(p.Root))
		before := e.monTotals()
		orphans0 := tr.Orphans()
		host0 := e.registry.Stats()
		e.registry.ResetWatermark()
		busy0 := make([]gpu.Utilization, len(e.devices))
		for i, d := range e.devices {
			busy0[i] = d.Util()
		}

		var seq uint64
		var xerr error
		res, seq, xerr = e.executeWith(ctx, name, p, sql, col)
		if xerr != nil {
			return xerr
		}

		after := e.monTotals()
		host1 := e.registry.Stats()
		busy := make([]explain.DeviceBusy, len(e.devices))
		for i, d := range e.devices {
			u := d.Util()
			busy[i] = explain.DeviceBusy{
				Device: d.ID(),
				Kernel: u.Kernel - busy0[i].Kernel,
				H2D:    u.H2D - busy0[i].H2D,
				D2H:    u.D2H - busy0[i].D2H,
			}
		}
		if name == "" {
			// Mirror the tracer's automatic root-span naming.
			name = fmt.Sprintf("q%d", seq)
		}
		rep = explain.Build(explain.Input{
			Query:      name,
			RequestID:  qlog.RequestIDFrom(ctx),
			SQL:        sql,
			Plan:       fmt.Sprintf("%s", p.Root),
			GPUEnabled: e.GPUEnabled(),
			Thresholds: e.thresholds,
			Modeled:    res.Modeled,
			Rows:       res.Table.Rows(),
			Ops:        col.Ops(),
			Spans:      tr.QuerySpans(seq),
			Monitor:    after.sub(before),
			Host: explain.HostMemStats{
				WatermarkBytes: host1.Watermark,
				FreeSpans:      host1.FreeSpans,
				MaxFreeSpans:   host1.MaxFreeSpans,
				Allocs:         host1.Allocs - host0.Allocs,
				Fails:          host1.Fails - host0.Fails,
			},
			Busy:    busy,
			Orphans: tr.Orphans() - orphans0,
		})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	res.Wall.Parse = parseWall
	res.Wall.Plan = planWall
	res.Wall.Exec = execWall
	return rep, res, nil
}
