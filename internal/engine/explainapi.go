package engine

import (
	"context"
	"fmt"
	"time"

	"blugpu/internal/explain"
	"blugpu/internal/plan"
	"blugpu/internal/qlog"
	"blugpu/internal/sqlparse"
	"blugpu/internal/trace"
)

// monTotals is a point-in-time snapshot of the monitor counters the
// explain report reconciles. Subtracting two snapshots taken around one
// query yields that query's Totals. Only valid for single-query use:
// concurrent queries on the same engine would interleave their deltas.
type monTotals struct {
	kernels       uint64
	transfers     uint64
	transferBytes int64
	retries       uint64
	placeRetries  uint64
	fallbacks     uint64
	faults        uint64
}

func (e *Engine) monTotals() monTotals {
	var t monTotals
	for _, k := range e.mon.Kernels() {
		t.kernels += k.Count
	}
	h2d, d2h := e.mon.Transfers()
	t.transfers = h2d.Count + d2h.Count
	t.transferBytes = h2d.Bytes + d2h.Bytes
	for _, r := range e.mon.Retries() {
		if r.Op == "place" {
			t.placeRetries += r.Count
		} else {
			t.retries += r.Count
		}
	}
	for _, fb := range e.mon.Fallbacks() {
		t.fallbacks += fb.Count
	}
	t.faults = e.mon.FaultTotal()
	return t
}

func (t monTotals) sub(o monTotals) explain.Totals {
	return explain.Totals{
		Kernels:       t.kernels - o.kernels,
		Transfers:     t.transfers - o.transfers,
		TransferBytes: t.transferBytes - o.transferBytes,
		Retries:       t.retries - o.retries,
		PlaceRetries:  t.placeRetries - o.placeRetries,
		Fallbacks:     t.fallbacks - o.fallbacks,
		Faults:        t.faults - o.faults,
	}
}

// ExplainAnalyze runs sql and returns the decision audit: the plan-time
// prognosis next to what actually ran, reconciled against the span tree
// and the monitor counters.
func (e *Engine) ExplainAnalyze(sql string) (*explain.Report, error) {
	rep, _, err := e.ExplainAnalyzeNamed("", sql)
	return rep, err
}

// ExplainAnalyzeNamed is ExplainAnalyze under an explicit query name
// (empty picks the tracer's automatic "q<N>"). It also returns the
// query result, which the shell prints below the audit.
//
// A tracer is required for span attribution; when none is attached the
// engine installs a temporary one for the duration of the call and
// detaches it afterwards.
func (e *Engine) ExplainAnalyzeNamed(name, sql string) (*explain.Report, *Result, error) {
	return e.ExplainAnalyzeNamedCtx(context.Background(), name, sql)
}

// ExplainAnalyzeNamedCtx is ExplainAnalyzeNamed under a caller context:
// cancellation aborts the audited query between operators exactly as it
// does for QueryCtx. Still single-query-only — the monitor deltas and the
// temporary tracer are not safe against concurrent queries.
func (e *Engine) ExplainAnalyzeNamedCtx(ctx context.Context, name, sql string) (*explain.Report, *Result, error) {
	parseStart := time.Now()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	parseWall := time.Since(parseStart)
	planStart := time.Now()
	p, err := plan.Build(stmt)
	if err != nil {
		return nil, nil, err
	}
	planWall := time.Since(planStart)
	tr := e.tracer.Load()
	if tr == nil {
		tr = trace.New()
		e.tracer.Store(tr)
		defer e.tracer.Store(nil)
	}
	col := explain.NewCollector(e.prognoses(p.Root))
	before := e.monTotals()
	orphans0 := tr.Orphans()
	host0 := e.registry.Stats()
	e.registry.ResetWatermark()

	res, seq, err := e.executeWith(ctx, name, p, sql, col)
	if err != nil {
		return nil, nil, err
	}
	res.Wall.Parse = parseWall
	res.Wall.Plan = planWall

	after := e.monTotals()
	host1 := e.registry.Stats()
	if name == "" {
		// Mirror the tracer's automatic root-span naming.
		name = fmt.Sprintf("q%d", seq)
	}
	rep := explain.Build(explain.Input{
		Query:      name,
		RequestID:  qlog.RequestIDFrom(ctx),
		SQL:        sql,
		Plan:       fmt.Sprintf("%s", p.Root),
		GPUEnabled: e.GPUEnabled(),
		Thresholds: e.thresholds,
		Modeled:    res.Modeled,
		Rows:       res.Table.Rows(),
		Ops:        col.Ops(),
		Spans:      tr.QuerySpans(seq),
		Monitor:    after.sub(before),
		Host: explain.HostMemStats{
			WatermarkBytes: host1.Watermark,
			FreeSpans:      host1.FreeSpans,
			MaxFreeSpans:   host1.MaxFreeSpans,
			Allocs:         host1.Allocs - host0.Allocs,
			Fails:          host1.Fails - host0.Fails,
		},
		Orphans: tr.Orphans() - orphans0,
	})
	return rep, res, nil
}
