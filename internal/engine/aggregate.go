package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/evaluator"
	"blugpu/internal/explain"
	"blugpu/internal/gpu"
	"blugpu/internal/groupby"
	"blugpu/internal/optimizer"
	"blugpu/internal/parallel"
	"blugpu/internal/plan"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// aggPlanItem maps one plan aggregate to kernel aggregates. AVG expands
// into a SUM and a COUNT whose quotient is finalized on the host.
type aggPlanItem struct {
	out      string
	fn       plan.AggFunc
	sumIdx   int // kernel aggregate index (SUM/MIN/MAX, or AVG's SUM)
	countIdx int // AVG's COUNT index, -1 otherwise
}

func (e *Engine) execAggregate(n *plan.Aggregate, q qctx) (*frame, error) {
	// Fusion planning happens before the descent: the chain record rides
	// the query context so the filter/derive hooks can capture the entry
	// table and stage shapes as the host operators execute.
	qq := q.deeper()
	var cr *chainRec
	if e.fcache != nil && e.GPUEnabled() {
		cr = planFusedChain(n)
		qq.chain = cr
	}
	f, err := e.execInput(n.Input, qq)
	if err != nil {
		return nil, err
	}
	if cr != nil && cr.entry == nil {
		// Chain with no filter/derive stages: the aggregate's direct
		// input (scan or join output) is the entry table.
		cr.entry = f.tbl
	}
	start := f.at()
	op := f.begin("op", "groupby")

	// Lower plan aggregates to evaluator aggregates.
	var cols []evaluator.AggColumn
	items := make([]aggPlanItem, len(n.Aggs))
	for i, a := range n.Aggs {
		item := aggPlanItem{out: a.Out, fn: a.Func, countIdx: -1}
		switch a.Func {
		case plan.AggSum:
			item.sumIdx = len(cols)
			cols = append(cols, evaluator.AggColumn{Kind: groupby.Sum, Column: a.Column})
		case plan.AggCount:
			item.sumIdx = len(cols)
			cols = append(cols, evaluator.AggColumn{Kind: groupby.Count, Column: a.Column})
		case plan.AggMin:
			item.sumIdx = len(cols)
			cols = append(cols, evaluator.AggColumn{Kind: groupby.Min, Column: a.Column})
		case plan.AggMax:
			item.sumIdx = len(cols)
			cols = append(cols, evaluator.AggColumn{Kind: groupby.Max, Column: a.Column})
		case plan.AggAvg:
			item.sumIdx = len(cols)
			cols = append(cols, evaluator.AggColumn{Kind: groupby.Sum, Column: a.Column})
			item.countIdx = len(cols)
			cols = append(cols, evaluator.AggColumn{Kind: groupby.Count, Column: a.Column})
		default:
			return nil, fmt.Errorf("engine: unknown aggregate %v", a.Func)
		}
		items[i] = item
	}

	// Figure 3's first decision happens before the chain runs: the exact
	// input row count is known, so small (<= T1) and oversized (> T3)
	// queries take the original Figure-1 CPU chain with no MEMCPY
	// evaluator. Everything else runs the Figure-2 GPU chain, which
	// stages into pinned memory as it goes.
	rows := int64(f.tbl.Rows())
	preGPU := e.GPUEnabled() && rows > e.thresholds.T1Rows &&
		(e.thresholds.T3Rows <= 0 || rows <= e.thresholds.T3Rows)

	// Host evaluator chain: LCOG/LCOV/CCAT/HASH(+KMV)[+MEMCPY].
	hostStart := time.Now()
	chain, err := evaluator.BuildInput(f.tbl, nil, evaluator.Spec{Keys: n.Keys, Aggs: cols}, evaluator.Deps{
		Model:    e.model,
		Degree:   e.cfg.Degree,
		Monitor:  e.mon,
		Registry: e.registry,
		Stage:    preGPU,
		Trace:    op,
		TraceAt:  f.at(),
	})
	if err != nil {
		return nil, err
	}
	if chain.Staged != nil {
		defer chain.Staged.Release()
	}
	q.wallHost(hostStart)
	e.addCPU(f, chain.Modeled)
	// Cancellation checked here (not in the GPU error path below): a
	// canceled query must abort, never be mistaken for a GPU fault that
	// triggers the Section 2.1.1 CPU fallback.
	if cerr := qq.err(); cerr != nil {
		return nil, fmt.Errorf("engine: query canceled: %w", cerr)
	}

	in := chain.Input
	demand := groupby.MemoryDemand(in)
	// Second decision, now with the KMV group estimate and the exact
	// memory demand.
	decision, reason := optimizer.Decide(optimizer.Estimate{
		Rows:         rows,
		Groups:       int64(in.EstGroups),
		MemoryDemand: demand,
	}, e.thresholds, e.maxDeviceMem())
	if !preGPU {
		decision = optimizer.UseCPU
	}
	// Every effective path decision feeds the monitor, so the decision
	// breakdown (and the Prometheus counters built from it) covers every
	// query, not just the ones run under EXPLAIN ANALYZE.
	e.mon.RecordDecision(decision.String(), reason.String())

	var out *groupby.Result
	detail := ""
	fallbackCause := ""
	var ginfo gpuRunInfo
	var fx *fusedExec
	if decision == optimizer.UseGPU {
		// Try the fused chain first; it declines (nil fusedExec, nil
		// error) when it cannot improve on the staged path, which then
		// runs exactly as it would without fusion. A fused fault skips
		// the staged retry — the chain has already spilled, and Section
		// 2.1.1's discipline routes the query to the CPU.
		gpuStart := time.Now()
		gout, info, fexec, gerr := e.runAggregateFused(cr, in, demand, chain.Pinned, chain.Modeled, f, op)
		fx = fexec
		if fexec == nil && gerr == nil {
			gout, info, gerr = e.runAggregateGPU(in, demand, chain.Pinned, f, op)
		}
		q.wallGPU(gpuStart)
		ginfo = info
		if gerr != nil {
			// Device full, admission failed, or a GPU operation faulted:
			// Section 2.1.1's fallback. The query never sees the error.
			fallbackCause = gerr.Error()
			e.mon.RecordFallback("groupby", errors.Is(gerr, gpu.ErrInjected))
			op.Annotate(trace.Str("fallback", gerr.Error()))
		} else {
			out = gout
			if fx != nil {
				detail = fmt.Sprintf("gpu/fused/%s", out.Stats.Kernel)
			} else {
				detail = fmt.Sprintf("gpu/%s", out.Stats.Kernel)
			}
		}
	}
	if out == nil {
		cpuAt := f.at()
		cpuStart := time.Now()
		out, err = groupby.RunCPU(in, e.cfg.Degree, e.model)
		if err != nil {
			return nil, err
		}
		q.wallHost(cpuStart)
		e.addCPU(f, out.Stats.Modeled)
		op.Emit("op", "cpu-groupby", cpuAt, out.Stats.Modeled,
			trace.Int("groups", int64(out.Groups)))
		detail = fmt.Sprintf("cpu (%s)", reason)
	}

	// Estimate accountability: with the actual group count in hand, the
	// KMV estimate the decision ran on gets its relative error recorded.
	var relErr float64
	if in.EstGroups > 0 && out.Groups > 0 {
		relErr = math.Abs(float64(int64(in.EstGroups))-float64(out.Groups)) / float64(out.Groups)
		e.mon.RecordKMVError(relErr)
	}

	// Build the output table: decoded key columns + finalized aggregates.
	buildStart := time.Now()
	outTbl, err := e.buildAggOutput(chain, in, out, items)
	if err != nil {
		return nil, err
	}
	q.wallHost(buildStart)
	finalize := e.model.CPUTime(float64(out.Groups*len(items)), e.model.CPUExprRate, e.cfg.Degree)
	e.addCPU(f, finalize)
	op.End(f.at(), trace.Int("groups", int64(out.Groups)), trace.Str("path", detail))
	f.tbl = outTbl
	st := OpStat{
		Op:      "groupby",
		Detail:  detail,
		Rows:    out.Groups,
		Modeled: chain.Modeled + out.Stats.Modeled + finalize,
	}
	if fx != nil {
		// Fused chains charge cache fills and stage kernels beyond the
		// group-by's own Stats.Modeled; attribute them here so self times
		// still sum to the query total.
		st.Modeled += fx.chainModeled
	}
	f.ops = append(f.ops, st)
	if q.col != nil {
		rec := &explain.AggRecord{
			Keys:          append([]string(nil), n.Keys...),
			Plan:          q.col.NextPrognosis(),
			InputRows:     rows,
			EstGroups:     int64(in.EstGroups),
			ActualGroups:  int64(out.Groups),
			RelErr:        relErr,
			MemoryDemand:  demand,
			Decision:      decision.String(),
			Reason:        reason.String(),
			Path:          detail,
			Attempts:      ginfo.attempts,
			Retries:       ginfo.retries,
			FallbackCause: fallbackCause,
			Devices:       ginfo.devices,
		}
		if fx != nil {
			rec.Fused = true
			rec.FusedStages = fx.stages
			rec.SavedBytes = fx.saved
			rec.UploadBytes = fx.uploaded
			rec.ChainHighWater = fx.highWater
		}
		q.record(st, op.ID(), start, f.at(), rec, nil)
	}
	return f, nil
}

// maxGPUAttempts bounds the device attempts per group-by: the first try
// plus one retry on a different device. Exhausting the attempts routes
// the query to the CPU path (Section 2.1.1's fallback) — a query never
// fails because a GPU operation failed.
const maxGPUAttempts = 2

// gpuRetryBackoff is the modeled delay charged to a query before it
// retries a failed GPU operation on another device (doubling per
// attempt).
const gpuRetryBackoff = 100 * vtime.Microsecond

// gpuRunInfo summarizes a group-by's device attempts for the explain
// collector: how many placements were tried, how many turned into
// cross-device retries, and which devices admitted the task.
type gpuRunInfo struct {
	attempts int
	retries  int
	devices  []int
}

// runAggregateGPU places the task on the fleet and runs the device path,
// retrying once on a different device when an operation faults. Every
// attempt's reservation is released exactly once, before any retry or
// fallback runs. Each attempt gets a span under the group-by operator's
// span op; the reservation is bound to it, so every kernel, transfer and
// injected fault of the attempt lands on that span in the trace.
func (e *Engine) runAggregateGPU(in *groupby.Input, demand int64, pinned bool, f *frame, op trace.Context) (*groupby.Result, gpuRunInfo, error) {
	var info gpuRunInfo
	if e.sched == nil {
		return nil, info, errors.New("engine: no devices")
	}
	var exclude map[int]bool
	backoff := gpuRetryBackoff
	var lastErr error
	for attempt := 0; attempt < maxGPUAttempts; attempt++ {
		info.attempts++
		g := op.Begin("gpu", fmt.Sprintf("gpu-groupby attempt %d", attempt+1), f.at())
		placement, err := e.sched.TryPlaceExcludingTraced(g, f.at(), demand, exclude)
		if err != nil {
			// Busy fleet or the remaining devices' reservations faulted:
			// waiting briefly is an option (Section 2.1.1); the prototype
			// falls back to the CPU instead.
			g.End(f.at(), trace.Str("error", err.Error()))
			return nil, info, err
		}
		placement.Reservation().BindSpan(g.ID())
		dev := placement.Device()
		info.devices = append(info.devices, dev.ID())
		out, err := groupby.RunGPU(in, placement.Reservation(), e.model, groupby.GPUOptions{
			Race:   e.cfg.Race,
			Pinned: pinned,
		})
		placement.Release()
		if err == nil {
			e.sched.ReportSuccess(dev)
			// Sample device memory for the monitor at the query's
			// virtual-time offsets: the demand held for the kernel's
			// duration, then released.
			e.mon.RecordMemSample(dev.ID(), vtime.Time(f.modeled.Seconds()), demand, dev.TotalMemory())
			e.addGPU(f, out.Stats.Modeled, demand)
			e.mon.RecordMemSample(dev.ID(), vtime.Time(f.modeled.Seconds()), 0, dev.TotalMemory())
			g.End(f.at(), trace.Int("device", int64(dev.ID())),
				trace.Str("kernel", out.Stats.Kernel))
			return out, info, nil
		}
		faulted := errors.Is(err, gpu.ErrInjected)
		if faulted {
			e.sched.ReportFailure(dev)
		}
		g.End(f.at(), trace.Int("device", int64(dev.ID())), trace.Str("error", err.Error()))
		lastErr = err
		if attempt+1 < maxGPUAttempts {
			info.retries++
			e.mon.RecordGPURetry("groupby", faulted)
			if exclude == nil {
				exclude = make(map[int]bool)
			}
			exclude[dev.ID()] = true
			// Backoff is modeled, like everything else in the simulation.
			op.Emit("gpu", "retry-backoff", f.at(), backoff, trace.Str("cause", err.Error()))
			f.modeled += backoff
			backoff *= 2
		}
	}
	return nil, info, lastErr
}

// buildAggOutput decodes group keys and finalizes aggregates into the
// result table.
//
// Groups are emitted in canonical packed-key order. Hash-table scan
// order differs between the CPU chain, the three device kernels, and
// the partitioned merge, so without a canonical order the same query
// could return rows in different orders depending on which path ran —
// and a fault-induced CPU fallback would no longer be bit-identical to
// the GPU run. Sorting by key makes the output path-independent.
func (e *Engine) buildAggOutput(chain *evaluator.Result, in *groupby.Input, out *groupby.Result, items []aggPlanItem) (*columnar.Table, error) {
	groups := out.Groups
	perm := make([]int, groups)
	for i := range perm {
		perm[i] = i
	}
	if in.Wide() {
		sort.Slice(perm, func(a, b int) bool {
			return bytes.Compare(out.WideKeys[perm[a]], out.WideKeys[perm[b]]) < 0
		})
	} else {
		sort.Slice(perm, func(a, b int) bool { return out.Keys[perm[a]] < out.Keys[perm[b]] })
	}
	keyVal := func(g int, fi int) columnar.Value {
		if in.Wide() {
			return evaluator.DecodeWideKey(out.WideKeys[g], chain.Fields[fi])
		}
		return evaluator.DecodeKey(out.Keys[g], chain.Fields[fi])
	}

	var tcols []columnar.Column
	for fi, field := range chain.Fields {
		// Key decode is per-group independent; the column builder pass in
		// ColumnFromValues stays sequential.
		vals := make([]columnar.Value, groups)
		parallel.For(groups, exprGrain, e.cfg.Degree, func(lo, hi, _ int) {
			for g := lo; g < hi; g++ {
				vals[g] = keyVal(perm[g], fi)
			}
		})
		col, err := columnar.ColumnFromValues(field.Column, field.Type, vals)
		if err != nil {
			return nil, err
		}
		tcols = append(tcols, col)
	}

	for _, item := range items {
		spec := in.Aggs[item.sumIdx]
		words := out.AggWords[item.sumIdx]
		switch {
		case item.fn == plan.AggAvg:
			counts := out.AggWords[item.countIdx]
			b := columnar.NewFloat64Builder(item.out)
			for g := 0; g < groups; g++ {
				c := counts[perm[g]]
				if c == 0 {
					b.AppendNull()
					continue
				}
				var sum float64
				if spec.Type == columnar.Float64 {
					sum = math.Float64frombits(words[perm[g]])
				} else {
					sum = float64(int64(words[perm[g]]))
				}
				b.Append(sum / float64(c))
			}
			tcols = append(tcols, b.Build())
		case spec.Type == columnar.Float64 && spec.Kind != groupby.Count:
			b := columnar.NewFloat64Builder(item.out)
			for g := 0; g < groups; g++ {
				v := math.Float64frombits(words[perm[g]])
				// MIN/MAX identity means every input was NULL.
				if (spec.Kind == groupby.Min && math.IsInf(v, 1)) ||
					(spec.Kind == groupby.Max && math.IsInf(v, -1)) {
					b.AppendNull()
					continue
				}
				b.Append(v)
			}
			tcols = append(tcols, b.Build())
		default:
			b := columnar.NewInt64Builder(item.out)
			for g := 0; g < groups; g++ {
				v := int64(words[perm[g]])
				if (spec.Kind == groupby.Min && v == math.MaxInt64) ||
					(spec.Kind == groupby.Max && v == math.MinInt64) {
					b.AppendNull()
					continue
				}
				b.Append(v)
			}
			tcols = append(tcols, b.Build())
		}
	}
	return columnar.NewTable("groupby", tcols...)
}
