package engine

import (
	"fmt"

	"blugpu/internal/bsort"
	"blugpu/internal/columnar"
	"blugpu/internal/explain"
	"blugpu/internal/parallel"
	"blugpu/internal/plan"
	"blugpu/internal/trace"
)

// encodeSortKeys builds fixed-width binary-sortable keys for the rows of
// tbl under the given sort keys: per column a 4-byte NULL flag (NULLs
// first) followed by the order-preserving encoding of the value. Columns
// are validated up front so the per-row encoding — each row an
// independent allocation — can run across the worker pool.
func encodeSortKeys(tbl *columnar.Table, keys []plan.SortKey, degree int) ([][]byte, error) {
	n := tbl.Rows()
	type colEnc struct {
		col  columnar.Column
		desc bool
	}
	encs := make([]colEnc, len(keys))
	for i, k := range keys {
		col := tbl.Column(k.Column)
		if col == nil {
			return nil, fmt.Errorf("engine: unknown sort column %q", k.Column)
		}
		switch col.(type) {
		case *columnar.Int64Column, *columnar.Float64Column, *columnar.StringColumn:
		default:
			return nil, fmt.Errorf("engine: cannot sort column type %v", col.Type())
		}
		encs[i] = colEnc{col: col, desc: k.Desc}
	}
	out := make([][]byte, n)
	parallel.For(n, exprGrain, degree, func(lo, hi, _ int) {
		for r := lo; r < hi; r++ {
			var key []byte
			for _, enc := range encs {
				null := enc.col.IsNull(r)
				flag := uint32(1)
				if null {
					flag = 0 // NULLs sort first
				}
				key = bsort.AppendUint32Key(key, flag, enc.desc)
				switch c := enc.col.(type) {
				case *columnar.Int64Column:
					v := int64(0)
					if !null {
						v = c.Int64(r)
					}
					key = bsort.AppendInt64Key(key, v, enc.desc)
				case *columnar.Float64Column:
					v := 0.0
					if !null {
						v = c.Float64(r)
					}
					key = bsort.AppendFloat64Key(key, v, enc.desc)
				case *columnar.StringColumn:
					// The dictionary is sorted, so codes are order-preserving.
					code := uint32(0)
					if !null {
						code = uint32(c.Code(r))
					}
					key = bsort.AppendUint32Key(key, code, enc.desc)
				}
			}
			out[r] = bsort.EncodePad(key)
		}
	})
	return out, nil
}

// hybridSort sorts tbl's rows by keys through the hybrid job-queue sort
// and returns the permutation plus the sort stats. op is the operator
// span the per-job sort spans hang off.
func (e *Engine) hybridSort(tbl *columnar.Table, keys []plan.SortKey, f *frame, op trace.Context) ([]int32, bsort.Stats, error) {
	encoded, err := encodeSortKeys(tbl, keys, e.cfg.Degree)
	if err != nil {
		return nil, bsort.Stats{}, err
	}
	src := bsort.NewBytesKeySource(encoded)

	// Stage the partial key buffer in the registered segment when it
	// fits, for fast transfers.
	pinned := false
	if e.registry != nil && tbl.Rows() > 0 {
		if blk, err := e.registry.Alloc(tbl.Rows() * 16); err == nil {
			pinned = true
			defer blk.Release()
		}
	}
	cfg := bsort.Config{
		Model:        e.model,
		Degree:       e.cfg.Degree,
		GPUThreshold: e.cfg.GPUSortThreshold,
		Pinned:       pinned,
		Monitor:      e.mon,
		Trace:        op,
		TraceBase:    f.at(),
	}
	threshold := cfg.GPUThreshold
	if threshold <= 0 {
		threshold = bsort.DefaultGPUThreshold
	}
	if e.GPUEnabled() {
		cfg.Scheduler = e.sched
		if len(e.devices) > 1 && tbl.Rows() >= 2*threshold {
			cfg.Partitions = len(e.devices) * 2
		}
	}
	perm, stats, err := bsort.Sort(src, cfg)
	if err != nil {
		return nil, stats, err
	}
	e.addCPU(f, stats.KeyGen+stats.CPUTime)
	if stats.GPUTime > 0 {
		e.addGPU(f, stats.GPUTime, int64(tbl.Rows())*16)
	}
	return perm, stats, nil
}

// sortRecord converts bsort stats to the explain collector's shape.
func sortRecord(stats bsort.Stats) *explain.SortRecord {
	return &explain.SortRecord{
		Jobs: stats.Jobs, GPUJobs: stats.GPUJobs, CPUJobs: stats.CPUJobs,
		Requeues: stats.Requeues, Fallbacks: stats.Fallbacks, MaxDepth: stats.MaxDepth,
	}
}

func (e *Engine) execSort(n *plan.Sort, q qctx) (*frame, error) {
	f, err := e.execInput(n.Input, q.deeper())
	if err != nil {
		return nil, err
	}
	if f.tbl.Rows() > 1 {
		start := f.at()
		sp := f.begin("op", "sort")
		perm, stats, err := e.hybridSort(f.tbl, n.Keys, f, sp)
		if err != nil {
			return nil, err
		}
		sp.End(f.at(), trace.Int("rows", int64(f.tbl.Rows())),
			trace.Int("jobs", int64(stats.Jobs)), trace.Int("gpu-jobs", int64(stats.GPUJobs)))
		f.tbl = columnar.GatherTableDegree(f.tbl.Name()+"_s", f.tbl, perm, e.cfg.Degree)
		st := OpStat{
			Op:      "sort",
			Detail:  fmt.Sprintf("jobs=%d gpu=%d cpu=%d", stats.Jobs, stats.GPUJobs, stats.CPUJobs),
			Rows:    f.tbl.Rows(),
			Modeled: stats.Modeled,
		}
		f.ops = append(f.ops, st)
		q.record(st, sp.ID(), start, f.at(), nil, sortRecord(stats))
	}
	return f, nil
}

func (e *Engine) execWindow(n *plan.Window, q qctx) (*frame, error) {
	f, err := e.execInput(n.Input, q.deeper())
	if err != nil {
		return nil, err
	}
	tbl := f.tbl
	ranks := make([]int64, tbl.Rows())
	if tbl.Rows() > 0 {
		// Sort by (partition, order) — the sort the paper says RANK()
		// drives — then walk the order assigning ranks per partition.
		var keys []plan.SortKey
		for _, p := range n.PartitionBy {
			keys = append(keys, plan.SortKey{Column: p})
		}
		keys = append(keys, n.OrderBy...)
		start := f.at()
		sp := f.begin("op", "window-sort")
		perm, stats, err := e.hybridSort(tbl, keys, f, sp)
		if err != nil {
			return nil, err
		}
		sp.End(f.at(), trace.Int("rows", int64(tbl.Rows())))
		st := OpStat{
			Op:      "window-sort",
			Detail:  fmt.Sprintf("rank over %d rows", tbl.Rows()),
			Rows:    tbl.Rows(),
			Modeled: stats.Modeled,
		}
		f.ops = append(f.ops, st)
		q.record(st, sp.ID(), start, f.at(), nil, sortRecord(stats))

		partKeys, err := encodeSortKeys(tbl, partitionKeys(n), e.cfg.Degree)
		if err != nil {
			return nil, err
		}
		orderKeys, err := encodeSortKeys(tbl, n.OrderBy, e.cfg.Degree)
		if err != nil {
			return nil, err
		}
		rank, pos := int64(0), int64(0)
		for i, r := range perm {
			if i == 0 || string(partKeys[r]) != string(partKeys[perm[i-1]]) {
				rank, pos = 1, 1
			} else {
				pos++
				if string(orderKeys[r]) != string(orderKeys[perm[i-1]]) {
					rank = pos
				}
			}
			ranks[r] = rank
		}
	}
	rb := columnar.NewInt64Builder(n.Out)
	for _, r := range ranks {
		rb.Append(r)
	}
	cols := append([]columnar.Column{}, tbl.Columns()...)
	cols = append(cols, rb.Build())
	out, err := columnar.NewTable(tbl.Name()+"_w", cols...)
	if err != nil {
		return nil, err
	}
	f.tbl = out
	return f, nil
}

func partitionKeys(n *plan.Window) []plan.SortKey {
	keys := make([]plan.SortKey, len(n.PartitionBy))
	for i, p := range n.PartitionBy {
		keys[i] = plan.SortKey{Column: p}
	}
	return keys
}
