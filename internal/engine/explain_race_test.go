package engine

import (
	"context"
	"sync"
	"testing"
)

// TestConcurrentExplainAnalyze runs several EXPLAIN ANALYZE audits on
// one engine at once. The audited epoch — the hostmem watermark reset,
// the monitor deltas, the temporary tracer — is serialized on the
// engine's explainMu, so every report must come back individually sane:
// reconciled, with a positive pinned-host watermark and per-device busy
// deltas that were not polluted by the sibling audits. Run under -race
// this also proves the watermark reset itself is data-race free.
func TestConcurrentExplainAnalyze(t *testing.T) {
	e := newTestEngine(t, 60_000)
	const sql = "SELECT s_month, SUM(s_qty) AS t FROM sales GROUP BY s_month ORDER BY t DESC"

	// Reference audit, unloaded: the concurrent reports must match its
	// shape (same kernels, same watermark-bearing memory section).
	ref, _, err := e.ExplainAnalyzeNamedCtx(context.Background(), "race-ref", sql)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Reconciled() {
		t.Fatalf("reference audit not reconciled: %v", ref.Totals.Mismatches)
	}

	const workers = 4
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	type audit struct {
		watermark int64
		kernels   uint64
		busyOK    bool
	}
	audits := make(chan audit, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				rep, res, err := e.ExplainAnalyzeNamedCtx(context.Background(), "", sql)
				if err != nil {
					errs <- err
					return
				}
				if res == nil || res.Table == nil {
					continue
				}
				var busy float64
				for _, d := range rep.Resources {
					busy += d.BusyMs
				}
				audits <- audit{
					watermark: rep.Memory.HostWatermarkBytes,
					kernels:   rep.Totals.Kernels,
					busyOK:    busy >= 0,
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(audits)
	for err := range errs {
		t.Fatal(err)
	}
	n := 0
	for a := range audits {
		n++
		// The watermark is rearmed per audit; a serialized epoch sees
		// exactly this query's pinned-host footprint — the same as the
		// unloaded reference, never a sibling's accumulation on top.
		if a.watermark != ref.Memory.HostWatermarkBytes {
			t.Errorf("audit watermark %d B != reference %d B (epoch not isolated)",
				a.watermark, ref.Memory.HostWatermarkBytes)
		}
		if a.kernels != ref.Totals.Kernels {
			t.Errorf("audit counted %d kernels, reference %d (delta polluted)",
				a.kernels, ref.Totals.Kernels)
		}
		if !a.busyOK {
			t.Error("negative per-device busy delta")
		}
	}
	if n != workers*rounds {
		t.Fatalf("%d audits completed, want %d", n, workers*rounds)
	}
}
