package engine

// Differential testing: a naive row-at-a-time reference executor runs the
// same queries over the same data, and the hybrid engine's results must
// match exactly — GPU on and off. This checks the whole stack (parser,
// planner, evaluator chain, kernels, decoders) against an independent
// implementation.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"blugpu/internal/columnar"
	"blugpu/internal/optimizer"
)

// refRow is one row as a map from column name to value.
type refRow map[string]columnar.Value

// refGroupBy computes SELECT keys..., SUM(col), COUNT(*), COUNT(col),
// MIN(col), MAX(col), AVG(col) the slow, obvious way.
type refAgg struct {
	fn  string // SUM COUNT COUNTCOL MIN MAX AVG
	col string
}

func tableRows(tbl *columnar.Table) []refRow {
	rows := make([]refRow, tbl.Rows())
	for i := range rows {
		r := refRow{}
		for _, c := range tbl.Columns() {
			r[c.Name()] = c.Value(i)
		}
		rows[i] = r
	}
	return rows
}

// refExec computes a filtered group-by with the given predicate, keys and
// aggregates over the table.
func refExec(tbl *columnar.Table, keep func(refRow) bool, keys []string, aggs []refAgg) map[string][]columnar.Value {
	type acc struct {
		keyVals []columnar.Value
		sum     map[int]float64
		sumI    map[int]int64
		isFloat map[int]bool
		cnt     map[int]int64
		minV    map[int]columnar.Value
		maxV    map[int]columnar.Value
		rows    int64
	}
	groups := map[string]*acc{}
	for _, row := range tableRows(tbl) {
		if keep != nil && !keep(row) {
			continue
		}
		var kb strings.Builder
		keyVals := make([]columnar.Value, len(keys))
		for i, k := range keys {
			keyVals[i] = row[k]
			fmt.Fprintf(&kb, "%v|", row[k])
		}
		g := groups[kb.String()]
		if g == nil {
			g = &acc{
				keyVals: keyVals,
				sum:     map[int]float64{}, sumI: map[int]int64{}, isFloat: map[int]bool{},
				cnt: map[int]int64{}, minV: map[int]columnar.Value{}, maxV: map[int]columnar.Value{},
			}
			groups[kb.String()] = g
		}
		g.rows++
		for ai, a := range aggs {
			if a.col == "" {
				continue
			}
			v := row[a.col]
			if v.Null {
				continue
			}
			g.cnt[ai]++
			if v.Type == columnar.Float64 {
				g.isFloat[ai] = true
				g.sum[ai] += v.F
			} else {
				g.sumI[ai] += v.I
			}
			if cur, ok := g.minV[ai]; !ok || v.Compare(cur) < 0 {
				g.minV[ai] = v
			}
			if cur, ok := g.maxV[ai]; !ok || v.Compare(cur) > 0 {
				g.maxV[ai] = v
			}
		}
	}
	out := map[string][]columnar.Value{}
	for key, g := range groups {
		var vals []columnar.Value
		vals = append(vals, g.keyVals...)
		for ai, a := range aggs {
			switch a.fn {
			case "SUM":
				if g.isFloat[ai] {
					vals = append(vals, columnar.FloatValue(g.sum[ai]))
				} else {
					vals = append(vals, columnar.IntValue(g.sumI[ai]))
				}
			case "COUNT":
				vals = append(vals, columnar.IntValue(g.rows))
			case "COUNTCOL":
				vals = append(vals, columnar.IntValue(g.cnt[ai]))
			case "MIN":
				if v, ok := g.minV[ai]; ok {
					vals = append(vals, v)
				} else {
					vals = append(vals, columnar.NullValue(columnar.Int64))
				}
			case "MAX":
				if v, ok := g.maxV[ai]; ok {
					vals = append(vals, v)
				} else {
					vals = append(vals, columnar.NullValue(columnar.Int64))
				}
			case "AVG":
				if g.cnt[ai] == 0 {
					vals = append(vals, columnar.NullValue(columnar.Float64))
				} else {
					total := g.sum[ai] + float64(g.sumI[ai])
					vals = append(vals, columnar.FloatValue(total/float64(g.cnt[ai])))
				}
			}
		}
		out[key] = vals
	}
	return out
}

// diffTable builds a randomized table for differential runs.
func diffTable(rng *rand.Rand, rows int) *columnar.Table {
	a := columnar.NewInt64Builder("a")
	b := columnar.NewInt64Builder("b")
	v := columnar.NewInt64Builder("v")
	f := columnar.NewFloat64Builder("f")
	s := columnar.NewStringBuilder("s")
	labels := []string{"x", "y", "z", "w"}
	for i := 0; i < rows; i++ {
		a.Append(int64(rng.Intn(9)))
		b.Append(int64(rng.Intn(7) - 3))
		if rng.Intn(10) == 0 {
			v.AppendNull()
		} else {
			v.Append(int64(rng.Intn(100) - 50))
		}
		if rng.Intn(12) == 0 {
			f.AppendNull()
		} else {
			f.Append(float64(rng.Intn(1000))/8 - 40)
		}
		s.Append(labels[rng.Intn(len(labels))])
	}
	return columnar.MustNewTable("d", a.Build(), b.Build(), v.Build(), f.Build(), s.Build())
}

// resultIndex renders an engine result into the same key->values map.
func resultIndex(res *Result, keyCount int) map[string][]columnar.Value {
	out := map[string][]columnar.Value{}
	for r := 0; r < res.Table.Rows(); r++ {
		row := res.Table.Row(r)
		var kb strings.Builder
		for i := 0; i < keyCount; i++ {
			fmt.Fprintf(&kb, "%v|", row[i])
		}
		out[kb.String()] = row
	}
	return out
}

func valuesEqual(a, b columnar.Value) bool {
	if a.Null || b.Null {
		return a.Null == b.Null
	}
	af, bf := a, b
	// Numeric comparison with float tolerance.
	toF := func(v columnar.Value) (float64, bool) {
		switch v.Type {
		case columnar.Int64:
			return float64(v.I), true
		case columnar.Float64:
			return v.F, true
		}
		return 0, false
	}
	if x, ok := toF(af); ok {
		if y, ok2 := toF(bf); ok2 {
			if x == y {
				return true
			}
			scale := math.Max(math.Abs(x), math.Abs(y))
			return math.Abs(x-y) <= 1e-9*math.Max(scale, 1)
		}
	}
	return a.Equal(b)
}

func compareToReference(t *testing.T, res *Result, want map[string][]columnar.Value, keyCount int, label string) {
	t.Helper()
	got := resultIndex(res, keyCount)
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, reference has %d", label, len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing group %q", label, k)
		}
		for i := range wv {
			if !valuesEqual(gv[i], wv[i]) {
				t.Fatalf("%s: group %q col %d: got %v want %v", label, k, i, gv[i], wv[i])
			}
		}
	}
}

// TestDifferentialGroupBy runs a grid of grouped queries against the
// reference executor, with the GPU both enabled and disabled (the GPU
// configurations force tiny thresholds so kernels actually run).
func TestDifferentialGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tbl := diffTable(rng, 4000)

	type tc struct {
		name string
		sql  string
		keys []string
		aggs []refAgg
		keep func(refRow) bool
	}
	cases := []tc{
		{
			name: "single-key-all-aggs",
			sql: `SELECT a, SUM(v) AS s, COUNT(*) AS c, COUNT(v) AS cv, MIN(v) AS mn, MAX(v) AS mx, AVG(f) AS av
			      FROM d GROUP BY a`,
			keys: []string{"a"},
			aggs: []refAgg{{"SUM", "v"}, {"COUNT", ""}, {"COUNTCOL", "v"}, {"MIN", "v"}, {"MAX", "v"}, {"AVG", "f"}},
		},
		{
			name: "two-keys-string",
			sql:  `SELECT a, s, SUM(f) AS sf, COUNT(*) AS c FROM d GROUP BY a, s`,
			keys: []string{"a", "s"},
			aggs: []refAgg{{"SUM", "f"}, {"COUNT", ""}},
		},
		{
			name: "filtered",
			sql:  `SELECT b, SUM(v) AS s, MAX(f) AS mx FROM d WHERE a > 3 AND s <> 'w' GROUP BY b`,
			keys: []string{"b"},
			aggs: []refAgg{{"SUM", "v"}, {"MAX", "f"}},
			keep: func(r refRow) bool {
				return !r["a"].Null && r["a"].I > 3 && r["s"].S != "w"
			},
		},
		{
			name: "between-in",
			sql:  `SELECT s, COUNT(*) AS c, AVG(v) AS av FROM d WHERE v BETWEEN -20 AND 20 AND s IN ('x', 'y') GROUP BY s`,
			keys: []string{"s"},
			aggs: []refAgg{{"COUNT", ""}, {"AVG", "v"}},
			keep: func(r refRow) bool {
				v := r["v"]
				return !v.Null && v.I >= -20 && v.I <= 20 && (r["s"].S == "x" || r["s"].S == "y")
			},
		},
	}

	configs := []struct {
		name string
		mk   func() (*Engine, error)
	}{
		{"cpu-only", func() (*Engine, error) { return New(Config{Degree: 8}) }},
		{"gpu-forced", func() (*Engine, error) {
			return New(Config{Devices: 2, Degree: 8,
				Thresholds: tinyThresholds()})
		}},
		{"gpu-raced", func() (*Engine, error) {
			return New(Config{Devices: 2, Degree: 8, Race: true,
				Thresholds: tinyThresholds()})
		}},
	}
	for _, cfg := range configs {
		eng, err := cfg.mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(tbl); err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			res, err := eng.Query(c.sql)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.name, c.name, err)
			}
			want := refExec(tbl, c.keep, c.keys, c.aggs)
			compareToReference(t, res, want, len(c.keys), cfg.name+"/"+c.name)
			if cfg.name != "cpu-only" && !res.GPUUsed {
				t.Errorf("%s/%s: tiny thresholds should force the device", cfg.name, c.name)
			}
		}
	}
}

// TestDifferentialOrderBy checks ORDER BY against a reference sort.
func TestDifferentialOrderBy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := diffTable(rng, 2000)
	eng, err := New(Config{Devices: 2, Degree: 8, GPUSortThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(tbl); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT a, b, v FROM d ORDER BY a, b DESC, v")
	if err != nil {
		t.Fatal(err)
	}
	// Reference: stable sort of (a asc, b desc, v asc NULLS FIRST).
	rows := tableRows(tbl)
	sort.SliceStable(rows, func(i, j int) bool {
		if c := rows[i]["a"].Compare(rows[j]["a"]); c != 0 {
			return c < 0
		}
		if c := rows[i]["b"].Compare(rows[j]["b"]); c != 0 {
			return c > 0 // DESC
		}
		return rows[i]["v"].Compare(rows[j]["v"]) < 0
	})
	for i := 0; i < res.Table.Rows(); i++ {
		got := res.Table.Row(i)
		if !valuesEqual(got[0], rows[i]["a"]) || !valuesEqual(got[1], rows[i]["b"]) || !valuesEqual(got[2], rows[i]["v"]) {
			t.Fatalf("row %d: got %v want (%v,%v,%v)", i, got, rows[i]["a"], rows[i]["b"], rows[i]["v"])
		}
	}
}

func tinyThresholds() optimizer.Thresholds {
	return optimizer.Thresholds{T1Rows: 1, T2Groups: 0, T3Rows: 1 << 40}
}
