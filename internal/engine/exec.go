package engine

import (
	"fmt"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/expr"
	"blugpu/internal/parallel"
	"blugpu/internal/plan"
	"blugpu/internal/trace"
)

// exprGrain is the minimum rows per worker for parallel expression
// evaluation; interpreted Eval calls are heavy enough for small chunks.
const exprGrain = 512

// exec dispatches one plan node. The query context q rides along so every
// operator can hang its span off the query root.
func (e *Engine) exec(n plan.Node, q qctx) (*frame, error) {
	if err := q.err(); err != nil {
		return nil, fmt.Errorf("engine: query canceled: %w", err)
	}
	switch node := n.(type) {
	case *plan.Scan:
		return e.execScan(node, q)
	case *plan.Join:
		return e.execJoin(node, q)
	case *plan.Filter:
		return e.execFilter(node, q)
	case *plan.Derive:
		return e.execDerive(node, q)
	case *plan.Aggregate:
		return e.execAggregate(node, q)
	case *plan.Window:
		return e.execWindow(node, q)
	case *plan.Project:
		return e.execProject(node, q)
	case *plan.Sort:
		return e.execSort(node, q)
	case *plan.Limit:
		return e.execLimit(node, q)
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// execInput runs an operator's input subtree, then re-checks the query's
// context so cancellation is honored between operators: a query canceled
// while its input ran stops before this operator starts its own work,
// with every reservation the input held already released on its unwind.
func (e *Engine) execInput(n plan.Node, q qctx) (*frame, error) {
	f, err := e.exec(n, q)
	if err != nil {
		return nil, err
	}
	if cerr := q.err(); cerr != nil {
		return nil, fmt.Errorf("engine: query canceled: %w", cerr)
	}
	return f, nil
}

func (e *Engine) execScan(n *plan.Scan, q qctx) (*frame, error) {
	tbl := e.tables[n.Table]
	if tbl == nil {
		return nil, fmt.Errorf("engine: unknown table %q", n.Table)
	}
	// Late materialization: narrow to the referenced columns up front
	// (no copy — the narrowed table shares the column vectors).
	if n.Needed != nil {
		var cols []columnar.Column
		for _, name := range n.Needed {
			if c := tbl.Column(name); c != nil {
				cols = append(cols, c)
			}
		}
		if len(cols) > 0 && len(cols) < tbl.NumColumns() {
			narrowed, err := columnar.NewTable(tbl.Name(), cols...)
			if err == nil {
				tbl = narrowed
			}
		}
	}
	f := &frame{q: q, tbl: tbl}
	start := f.at()
	sp := f.begin("op", "scan")
	t := e.model.CPUTime(float64(tbl.Rows()), e.model.CPUScanRate, e.cfg.Degree)
	e.addCPU(f, t)
	sp.End(f.at(), trace.Str("table", n.Table), trace.Int("rows", int64(tbl.Rows())))
	st := OpStat{Op: "scan", Detail: n.Table, Rows: tbl.Rows(), Modeled: t}
	f.ops = append(f.ops, st)
	q.record(st, sp.ID(), start, f.at(), nil, nil)
	return f, nil
}

func (e *Engine) execFilter(n *plan.Filter, q qctx) (*frame, error) {
	f, err := e.execInput(n.Input, q.deeper())
	if err != nil {
		return nil, err
	}
	start := f.at()
	sp := f.begin("op", "filter")
	hostStart := time.Now()
	sel, err := expr.EvalPredicateDegree(f.tbl, n.Pred, e.cfg.Degree)
	if err != nil {
		return nil, err
	}
	q.wallHost(hostStart)
	gatherStart := time.Now()
	rows := sel.IndicesDegree(e.cfg.Degree)
	out := columnar.GatherTableDegree(f.tbl.Name()+"_f", f.tbl, rows, e.cfg.Degree)
	q.wallGather(gatherStart)
	if cr := q.chain; cr.member(n) {
		// Fusion chain bookkeeping: f.tbl is still this filter's input
		// here, so the deepest member captures the chain's entry table.
		cr.noteEntry(f.tbl)
		cr.stages = append(cr.stages, chainStage{op: "filter", inRows: f.tbl.Rows(), outRows: out.Rows()})
	}
	t := e.model.CPUTime(float64(f.tbl.Rows()), e.model.CPUExprRate, e.cfg.Degree) +
		e.model.CPUTime(float64(len(rows)*out.NumColumns()), e.model.CPUScanRate, e.cfg.Degree)
	e.addCPU(f, t)
	sp.End(f.at(), trace.Int("rows", int64(out.Rows())))
	f.tbl = out
	st := OpStat{Op: "filter", Detail: n.Pred.String(), Rows: out.Rows(), Modeled: t}
	f.ops = append(f.ops, st)
	q.record(st, sp.ID(), start, f.at(), nil, nil)
	return f, nil
}

func (e *Engine) execJoin(n *plan.Join, q qctx) (*frame, error) {
	left, err := e.execInput(n.Left, q.deeper())
	if err != nil {
		return nil, err
	}
	start := left.at()
	sp := left.begin("op", "join")
	right := e.tables[n.Table]
	if right == nil {
		return nil, fmt.Errorf("engine: unknown join table %q", n.Table)
	}

	// Resolve which condition column belongs to which side.
	lcol, rcol := n.LeftCol, n.RightCol
	if !left.tbl.HasColumn(lcol) && left.tbl.HasColumn(rcol) {
		lcol, rcol = rcol, lcol
	}
	lk, ok := left.tbl.Column(lcol).(*columnar.Int64Column)
	if left.tbl.Column(lcol) == nil || right.Column(rcol) == nil {
		return nil, fmt.Errorf("engine: join condition %s=%s references unknown columns", n.LeftCol, n.RightCol)
	}
	if !ok {
		return nil, fmt.Errorf("engine: join column %q must be an integer key", lcol)
	}
	rk, ok := right.Column(rcol).(*columnar.Int64Column)
	if !ok {
		return nil, fmt.Errorf("engine: join column %q must be an integer key", rcol)
	}

	// Hash join: build on the smaller input, probe the larger.
	hostStart := time.Now()
	buildRight := right.Rows() <= left.tbl.Rows()
	var buildKeys, probeKeys *columnar.Int64Column
	if buildRight {
		buildKeys, probeKeys = rk, lk
	} else {
		buildKeys, probeKeys = lk, rk
	}
	ht := make(map[int64][]int32, buildKeys.Len())
	for i := 0; i < buildKeys.Len(); i++ {
		if buildKeys.IsNull(i) {
			continue
		}
		k := buildKeys.Int64(i)
		ht[k] = append(ht[k], int32(i))
	}
	var leftRows, rightRows []int32
	for i := 0; i < probeKeys.Len(); i++ {
		if probeKeys.IsNull(i) {
			continue
		}
		for _, m := range ht[probeKeys.Int64(i)] {
			if buildRight {
				leftRows = append(leftRows, int32(i))
				rightRows = append(rightRows, m)
			} else {
				leftRows = append(leftRows, m)
				rightRows = append(rightRows, int32(i))
			}
		}
	}

	q.wallHost(hostStart)

	// Materialize both sides, restricted to the referenced columns
	// (late materialization); column names must stay unique.
	gatherStart := time.Now()
	wanted := func(name string) bool {
		if n.Needed == nil {
			return true
		}
		for _, w := range n.Needed {
			if w == name {
				return true
			}
		}
		return false
	}
	cols := make([]columnar.Column, 0, left.tbl.NumColumns()+right.NumColumns())
	for _, c := range left.tbl.Columns() {
		if !wanted(c.Name()) {
			continue
		}
		cols = append(cols, columnar.GatherColumnDegree(c, c.Name(), leftRows, e.cfg.Degree))
	}
	for _, c := range right.Columns() {
		if left.tbl.HasColumn(c.Name()) {
			if c.Name() == rcol || c.Name() == lcol {
				continue // drop the duplicate join key
			}
			return nil, fmt.Errorf("engine: duplicate column %q across join of %s", c.Name(), n.Table)
		}
		if !wanted(c.Name()) {
			continue
		}
		cols = append(cols, columnar.GatherColumnDegree(c, c.Name(), rightRows, e.cfg.Degree))
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: join of %s would produce no columns", n.Table)
	}
	out, err := columnar.NewTable(left.tbl.Name()+"_j", cols...)
	if err != nil {
		return nil, err
	}
	q.wallGather(gatherStart)

	t := e.model.CPUTime(float64(buildKeys.Len()), e.model.CPUHashBuildRate, e.cfg.Degree) +
		e.model.CPUTime(float64(probeKeys.Len()), e.model.CPUHashProbeRate, e.cfg.Degree) +
		e.model.CPUTime(float64(out.Rows()*out.NumColumns()), e.model.CPUScanRate, e.cfg.Degree)
	e.addCPU(left, t)
	sp.End(left.at(), trace.Str("table", n.Table), trace.Int("rows", int64(out.Rows())))
	left.tbl = out
	st := OpStat{
		Op: "join", Detail: fmt.Sprintf("%s on %s=%s", n.Table, lcol, rcol),
		Rows: out.Rows(), Modeled: t,
	}
	left.ops = append(left.ops, st)
	q.record(st, sp.ID(), start, left.at(), nil, nil)
	return left, nil
}

func (e *Engine) execDerive(n *plan.Derive, q qctx) (*frame, error) {
	f, err := e.execInput(n.Input, q.deeper())
	if err != nil {
		return nil, err
	}
	start := f.at()
	sp := f.begin("op", "derive")
	hostStart := time.Now()
	cols := append([]columnar.Column{}, f.tbl.Columns()...)
	for _, dc := range n.Cols {
		col, err := evalToColumn(f.tbl, dc.Name, dc.Expr, e.cfg.Degree)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	q.wallHost(hostStart)
	out, err := columnar.NewTable(f.tbl.Name()+"_d", cols...)
	if err != nil {
		return nil, err
	}
	if cr := q.chain; cr.member(n) {
		cr.noteEntry(f.tbl)
		cr.stages = append(cr.stages, chainStage{op: "derive", inRows: f.tbl.Rows(), outRows: out.Rows(), cols: len(n.Cols)})
	}
	t := e.model.CPUTime(float64(f.tbl.Rows()*len(n.Cols)), e.model.CPUExprRate, e.cfg.Degree)
	e.addCPU(f, t)
	sp.End(f.at(), trace.Int("rows", int64(out.Rows())))
	f.tbl = out
	st := OpStat{Op: "derive", Rows: out.Rows(), Modeled: t}
	f.ops = append(f.ops, st)
	q.record(st, sp.ID(), start, f.at(), nil, nil)
	return f, nil
}

func (e *Engine) execProject(n *plan.Project, q qctx) (*frame, error) {
	f, err := e.execInput(n.Input, q.deeper())
	if err != nil {
		return nil, err
	}
	start := f.at()
	sp := f.begin("op", "project")
	hostStart := time.Now()
	cols := make([]columnar.Column, len(n.Cols))
	exprWork := 0
	for i, dc := range n.Cols {
		// Fast path: bare column reference just gets renamed/gathered.
		if ref, ok := dc.Expr.(*expr.Col); ok {
			src := f.tbl.Column(ref.Name)
			if src == nil {
				return nil, fmt.Errorf("engine: unknown column %q", ref.Name)
			}
			cols[i] = renameColumn(src, dc.Name, e.cfg.Degree)
			continue
		}
		col, err := evalToColumn(f.tbl, dc.Name, dc.Expr, e.cfg.Degree)
		if err != nil {
			return nil, err
		}
		cols[i] = col
		exprWork += f.tbl.Rows()
	}
	out, err := columnar.NewTable(f.tbl.Name()+"_p", cols...)
	if err != nil {
		return nil, err
	}
	q.wallHost(hostStart)
	t := e.model.CPUTime(float64(exprWork), e.model.CPUExprRate, e.cfg.Degree)
	e.addCPU(f, t)
	sp.End(f.at(), trace.Int("rows", int64(out.Rows())))
	f.tbl = out
	st := OpStat{Op: "project", Rows: out.Rows(), Modeled: t}
	f.ops = append(f.ops, st)
	q.record(st, sp.ID(), start, f.at(), nil, nil)
	return f, nil
}

func (e *Engine) execLimit(n *plan.Limit, q qctx) (*frame, error) {
	f, err := e.execInput(n.Input, q.deeper())
	if err != nil {
		return nil, err
	}
	limit := n.N
	if limit > f.tbl.Rows() {
		limit = f.tbl.Rows()
	}
	rows := columnar.IotaRows(limit, e.cfg.Degree)
	f.tbl = columnar.GatherTableDegree(f.tbl.Name()+"_l", f.tbl, rows, e.cfg.Degree)
	st := OpStat{Op: "limit", Rows: f.tbl.Rows()}
	f.ops = append(f.ops, st)
	// Limit charges no modeled time and emits no span; the zero-width
	// record keeps the audit's operator list 1:1 with Result.Ops.
	q.record(st, 0, f.at(), f.at(), nil, nil)
	return f, nil
}

// evalToColumn computes an expression for every row into a typed column.
// Rows evaluate in parallel into a value vector (expression evaluation is
// row-independent); the builder pass stays sequential, so the column —
// including its lazily allocated null bitmap — is identical at any degree.
func evalToColumn(tbl *columnar.Table, name string, ex expr.Expr, degree int) (columnar.Column, error) {
	t, err := ex.TypeOf(tbl)
	if err != nil {
		return nil, err
	}
	n := tbl.Rows()
	vals := make([]columnar.Value, n)
	err = parallel.ForErr(n, exprGrain, degree, func(lo, hi, _ int) error {
		for i := lo; i < hi; i++ {
			v, err := ex.Eval(tbl, i)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	switch t {
	case columnar.Int64:
		b := columnar.NewInt64Builder(name)
		for _, v := range vals {
			if v.Null {
				b.AppendNull()
			} else {
				b.Append(v.I)
			}
		}
		return b.Build(), nil
	case columnar.Float64:
		b := columnar.NewFloat64Builder(name)
		for _, v := range vals {
			if v.Null {
				b.AppendNull()
			} else {
				b.Append(v.F)
			}
		}
		return b.Build(), nil
	case columnar.String:
		b := columnar.NewStringBuilder(name)
		for _, v := range vals {
			if v.Null {
				b.AppendNull()
			} else {
				b.Append(v.S)
			}
		}
		return b.Build(), nil
	}
	return nil, fmt.Errorf("engine: unsupported expression type %v", t)
}

// renameColumn returns src under a new name without copying the values.
func renameColumn(src columnar.Column, name string, degree int) columnar.Column {
	if src.Name() == name {
		return src
	}
	all := columnar.IotaRows(src.Len(), degree)
	return columnar.GatherColumnDegree(src, name, all, degree)
}
