// Package engine is the public face of the hybrid CPU/GPU query engine —
// the reproduction's stand-in for DB2 BLU with the paper's GPU
// acceleration prototype wired in.
//
// An Engine owns a catalog of columnar tables, the pinned host-memory
// registry (registered once at startup, Section 2.1.2), a fleet of
// simulated GPUs behind the multi-GPU scheduler (Section 2.2), the
// integrated performance monitor (Section 2.3), and the optimizer
// thresholds driving Figure 3's CPU/GPU path selection. Query execution
// is functional — real results over real data — while elapsed time is
// modeled through the calibrated cost model, and every query also yields
// a resource Profile replayable by the concurrency simulator.
package engine

import (
	"errors"
	"fmt"
	"strings"

	"blugpu/internal/columnar"
	"blugpu/internal/des"
	"blugpu/internal/fault"
	"blugpu/internal/gpu"
	"blugpu/internal/hostmem"
	"blugpu/internal/monitor"
	"blugpu/internal/optimizer"
	"blugpu/internal/plan"
	"blugpu/internal/sched"
	"blugpu/internal/sqlparse"
	"blugpu/internal/vtime"
)

// Config configures an Engine.
type Config struct {
	// Model is the hardware cost model; nil uses vtime.Default().
	Model *vtime.CostModel
	// Devices is the number of GPUs to attach (0 disables offload).
	Devices int
	// DeviceSpec describes each GPU; zero value uses the K40 spec.
	DeviceSpec vtime.GPUSpec
	// PinnedBytes sizes the registered host segment (default 512 MiB).
	PinnedBytes int
	// Degree is the default intra-query parallelism (default 24).
	Degree int
	// Thresholds are the Figure-3 knobs; zero value uses defaults.
	Thresholds optimizer.Thresholds
	// Race lets the GPU moderator run a second kernel concurrently.
	Race bool
	// GPUSortThreshold is the minimum sort-job size for the device
	// (default bsort.DefaultGPUThreshold).
	GPUSortThreshold int
	// Faults optionally injects GPU faults at every device operation
	// site for robustness testing (see internal/fault). nil disables
	// injection. Whatever the injector does, queries never fail: every
	// GPU error routes to the CPU path.
	Faults *fault.Injector
}

// Engine executes SQL over registered columnar tables.
type Engine struct {
	cfg        Config
	model      *vtime.CostModel
	mon        *monitor.Monitor
	registry   *hostmem.Registry
	sched      *sched.Scheduler // nil when no devices
	devices    []*gpu.Device
	tables     map[string]*columnar.Table
	stats      map[string]*optimizer.TableStats
	thresholds optimizer.Thresholds
	gpuEnabled bool
}

// New builds an engine. The pinned segment is "registered" here, once,
// exactly as the paper registers host memory at engine start-up.
func New(cfg Config) (*Engine, error) {
	if cfg.Model == nil {
		cfg.Model = vtime.Default()
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 24
	}
	if cfg.PinnedBytes <= 0 {
		cfg.PinnedBytes = 512 << 20
	}
	if cfg.DeviceSpec.CUDACores == 0 {
		cfg.DeviceSpec = vtime.TeslaK40()
	}
	if cfg.Thresholds == (optimizer.Thresholds{}) {
		cfg.Thresholds = optimizer.DefaultThresholds()
	}
	e := &Engine{
		cfg:        cfg,
		model:      cfg.Model,
		mon:        monitor.New(),
		tables:     make(map[string]*columnar.Table),
		stats:      make(map[string]*optimizer.TableStats),
		thresholds: cfg.Thresholds,
		gpuEnabled: cfg.Devices > 0,
	}
	reg, err := hostmem.NewRegistry(cfg.PinnedBytes)
	if err != nil {
		return nil, err
	}
	e.registry = reg
	if cfg.Devices > 0 {
		for i := 0; i < cfg.Devices; i++ {
			e.devices = append(e.devices, gpu.NewDevice(i, cfg.DeviceSpec,
				gpu.WithSink(e.mon), gpu.WithModel(cfg.Model), gpu.WithFaults(cfg.Faults)))
		}
		s, err := sched.New(e.devices...)
		if err != nil {
			return nil, err
		}
		s.SetSink(e.mon)
		e.sched = s
	}
	return e, nil
}

// Register adds a table to the catalog and analyzes its statistics.
func (e *Engine) Register(tbl *columnar.Table) error {
	if tbl == nil {
		return errors.New("engine: nil table")
	}
	if _, dup := e.tables[tbl.Name()]; dup {
		return fmt.Errorf("engine: table %q already registered", tbl.Name())
	}
	e.tables[tbl.Name()] = tbl
	e.stats[tbl.Name()] = optimizer.Analyze(tbl)
	return nil
}

// Table returns a registered table, or nil.
func (e *Engine) Table(name string) *columnar.Table { return e.tables[name] }

// TableNames lists registered tables.
func (e *Engine) TableNames() []string {
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	return out
}

// Stats returns a table's analyzed statistics, or nil.
func (e *Engine) Stats(name string) *optimizer.TableStats { return e.stats[name] }

// Monitor exposes the integrated performance monitor.
func (e *Engine) Monitor() *monitor.Monitor { return e.mon }

// Devices exposes the GPU fleet (empty when offload is disabled).
func (e *Engine) Devices() []*gpu.Device { return e.devices }

// Scheduler exposes the multi-GPU scheduler (nil without devices).
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// GPUEnabled reports whether offload is currently on.
func (e *Engine) GPUEnabled() bool { return e.gpuEnabled && e.sched != nil }

// SetGPUEnabled toggles offload at runtime — how the benchmarks produce
// their "GPU off" baselines on the same engine.
func (e *Engine) SetGPUEnabled(on bool) { e.gpuEnabled = on }

// maxDeviceMem returns the largest attached device's memory, 0 if none.
func (e *Engine) maxDeviceMem() int64 {
	if !e.GPUEnabled() {
		return 0
	}
	var m int64
	for _, d := range e.devices {
		if d.TotalMemory() > m {
			m = d.TotalMemory()
		}
	}
	return m
}

// OpStat describes one executed operator.
type OpStat struct {
	Op      string
	Detail  string
	Rows    int
	Modeled vtime.Duration
}

// Result is a completed query.
type Result struct {
	// Table holds the result rows.
	Table *columnar.Table
	// Columns names the output columns in order.
	Columns []string
	// Modeled is the end-to-end modeled execution time.
	Modeled vtime.Duration
	// Profile is the query's resource demand for the concurrency
	// simulator.
	Profile des.Profile
	// Ops lists per-operator statistics in execution order.
	Ops []OpStat
	// GPUUsed reports whether any operator took a device path.
	GPUUsed bool
}

// Query parses, plans and executes one SQL statement.
func (e *Engine) Query(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(stmt)
	if err != nil {
		return nil, err
	}
	return e.Execute(p)
}

// Explain parses and plans a statement and renders the logical plan plus
// the optimizer's group-by path prognosis, without executing.
func (e *Engine) Explain(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	p, err := plan.Build(stmt)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %s\n", p.Root)
	e.explainAggregates(&sb, p.Root)
	return sb.String(), nil
}

// explainAggregates annotates every Aggregate node with the Figure-3
// decision the engine would take from table statistics.
func (e *Engine) explainAggregates(sb *strings.Builder, n plan.Node) {
	var input func(plan.Node) plan.Node
	input = func(n plan.Node) plan.Node {
		switch x := n.(type) {
		case *plan.Join:
			return x.Left
		case *plan.Filter:
			return x.Input
		case *plan.Derive:
			return x.Input
		case *plan.Aggregate:
			return x.Input
		case *plan.Window:
			return x.Input
		case *plan.Project:
			return x.Input
		case *plan.Sort:
			return x.Input
		case *plan.Limit:
			return x.Input
		default:
			return nil
		}
	}
	// Estimate base cardinality: the scan's table rows (filters unknown
	// until runtime; the estimate is the upper bound the optimizer has).
	var baseRows int64 = -1
	for cur := n; cur != nil; cur = input(cur) {
		if s, ok := cur.(*plan.Scan); ok {
			if ts := e.stats[s.Table]; ts != nil {
				baseRows = int64(ts.Rows)
			}
		}
	}
	for cur := n; cur != nil; cur = input(cur) {
		agg, ok := cur.(*plan.Aggregate)
		if !ok {
			continue
		}
		var groups uint64
		for cc := cur; cc != nil; cc = input(cc) {
			if s, ok := cc.(*plan.Scan); ok {
				if ts := e.stats[s.Table]; ts != nil {
					groups = ts.EstimateGroups(agg.Keys, baseRows)
				}
			}
		}
		decision, reason := optimizer.Decide(optimizer.Estimate{
			Rows:   baseRows,
			Groups: int64(groups),
			// Rough demand: rows * (key + payload vectors).
			MemoryDemand: baseRows * int64(8*(1+len(agg.Aggs))),
		}, e.thresholds, e.maxDeviceMem())
		fmt.Fprintf(sb, "groupby keys=%v: est rows<=%d groups~%d -> %s (%s)\n",
			agg.Keys, baseRows, groups, decision, reason)
	}
}

// Execute runs a lowered plan.
func (e *Engine) Execute(p *plan.Plan) (*Result, error) {
	f, err := e.exec(p.Root)
	if err != nil {
		return nil, err
	}
	cols := p.Output
	if len(cols) == 0 {
		for _, c := range f.tbl.Columns() {
			cols = append(cols, c.Name())
		}
	}
	res := &Result{
		Table:   f.tbl,
		Columns: cols,
		Modeled: f.modeled,
		Profile: des.Profile{Name: "query", Phases: mergePhases(f.phases)},
		Ops:     f.ops,
		GPUUsed: f.gpuUsed,
	}
	// The scheduler's breaker probations expire in virtual time; each
	// query's modeled duration is what makes that clock move.
	if e.sched != nil {
		e.sched.Advance(res.Modeled)
	}
	return res, nil
}

// frame is an intermediate execution state.
type frame struct {
	tbl     *columnar.Table
	modeled vtime.Duration
	phases  []des.Phase
	ops     []OpStat
	gpuUsed bool
}

// addCPU charges host time to the frame as both modeled duration and a
// DES phase (core-seconds at the engine's degree).
func (e *Engine) addCPU(f *frame, d vtime.Duration) {
	if d <= 0 {
		return
	}
	f.modeled += d
	par := e.model.CPU.EffectiveParallelism(e.cfg.Degree)
	f.phases = append(f.phases, des.Phase{
		Kind:   des.CPUPhase,
		Work:   d.Seconds() * par,
		MaxPar: par,
	})
}

// addGPU charges device time and memory residency to the frame.
func (e *Engine) addGPU(f *frame, d vtime.Duration, mem int64) {
	if d <= 0 {
		return
	}
	f.modeled += d
	f.phases = append(f.phases, des.Phase{Kind: des.GPUPhase, Work: d.Seconds(), Mem: mem})
	f.gpuUsed = true
}

// mergePhases coalesces adjacent CPU phases to keep profiles small.
func mergePhases(ps []des.Phase) []des.Phase {
	var out []des.Phase
	for _, p := range ps {
		if p.Work <= 0 {
			continue
		}
		n := len(out)
		if n > 0 && out[n-1].Kind == des.CPUPhase && p.Kind == des.CPUPhase && out[n-1].MaxPar == p.MaxPar {
			out[n-1].Work += p.Work
			continue
		}
		out = append(out, p)
	}
	return out
}
