// Package engine is the public face of the hybrid CPU/GPU query engine —
// the reproduction's stand-in for DB2 BLU with the paper's GPU
// acceleration prototype wired in.
//
// An Engine owns a catalog of columnar tables, the pinned host-memory
// registry (registered once at startup, Section 2.1.2), a fleet of
// simulated GPUs behind the multi-GPU scheduler (Section 2.2), the
// integrated performance monitor (Section 2.3), and the optimizer
// thresholds driving Figure 3's CPU/GPU path selection. Query execution
// is functional — real results over real data — while elapsed time is
// modeled through the calibrated cost model, and every query also yields
// a resource Profile replayable by the concurrency simulator.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/des"
	"blugpu/internal/explain"
	"blugpu/internal/fault"
	"blugpu/internal/fusion"
	"blugpu/internal/gpu"
	"blugpu/internal/hostmem"
	"blugpu/internal/monitor"
	"blugpu/internal/optimizer"
	"blugpu/internal/plan"
	"blugpu/internal/prof"
	"blugpu/internal/qlog"
	"blugpu/internal/sched"
	"blugpu/internal/sqlparse"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// Config configures an Engine.
type Config struct {
	// Model is the hardware cost model; nil uses vtime.Default().
	Model *vtime.CostModel
	// Devices is the number of GPUs to attach (0 disables offload).
	Devices int
	// DeviceSpec describes each GPU; zero value uses the K40 spec.
	DeviceSpec vtime.GPUSpec
	// PinnedBytes sizes the registered host segment (default 512 MiB).
	PinnedBytes int
	// Degree is the default intra-query parallelism (default 24).
	Degree int
	// Thresholds are the Figure-3 knobs; zero value uses defaults.
	Thresholds optimizer.Thresholds
	// Race lets the GPU moderator run a second kernel concurrently.
	Race bool
	// GPUSortThreshold is the minimum sort-job size for the device
	// (default bsort.DefaultGPUThreshold).
	GPUSortThreshold int
	// Faults optionally injects GPU faults at every device operation
	// site for robustness testing (see internal/fault). nil disables
	// injection. Whatever the injector does, queries never fail: every
	// GPU error routes to the CPU path.
	Faults *fault.Injector
	// Tracer, when set, records a span tree per query: plan operators,
	// scheduler placement, GPU attempts, per-job sorts, and every device
	// kernel/transfer/fault. nil disables tracing (the zero-cost default);
	// SetTracer can attach one later.
	Tracer *trace.Tracer
	// NoFusion disables the fused device pipeline (device-resident
	// intermediates; see internal/engine/fusion.go), restoring the
	// materialize-per-operator staged path for every group-by. The
	// benchmarks use it to produce fusion-off baselines.
	NoFusion bool
}

// Engine executes SQL over registered columnar tables.
type Engine struct {
	cfg        Config
	model      *vtime.CostModel
	mon        *monitor.Monitor
	registry   *hostmem.Registry
	sched      *sched.Scheduler // nil when no devices
	devices    []*gpu.Device
	tables     map[string]*columnar.Table
	stats      map[string]*optimizer.TableStats
	thresholds optimizer.Thresholds
	gpuEnabled bool
	// fcache is the device-resident column cache behind the fused data
	// path; nil when fusion is disabled (no devices or Config.NoFusion).
	fcache *fusion.Cache

	// tracer is swappable at runtime (blushell toggles it mid-session);
	// device sinks read it through the pointer on every event.
	tracer atomic.Pointer[trace.Tracer]
	// clockMu guards the engine's virtual clock, which lays consecutive
	// queries out sequentially on the trace timeline.
	clockMu sync.Mutex
	clock   vtime.Time
	// explainMu serializes ExplainAnalyze epochs: the hostmem watermark
	// reset, monitor counter deltas and temporary tracer are shared
	// engine state that concurrent audits would corrupt.
	explainMu sync.Mutex
}

// New builds an engine. The pinned segment is "registered" here, once,
// exactly as the paper registers host memory at engine start-up.
func New(cfg Config) (*Engine, error) {
	if cfg.Model == nil {
		cfg.Model = vtime.Default()
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 24
	}
	if cfg.PinnedBytes <= 0 {
		cfg.PinnedBytes = 512 << 20
	}
	if cfg.DeviceSpec.CUDACores == 0 {
		cfg.DeviceSpec = vtime.TeslaK40()
	}
	if cfg.Thresholds == (optimizer.Thresholds{}) {
		cfg.Thresholds = optimizer.DefaultThresholds()
	}
	e := &Engine{
		cfg:        cfg,
		model:      cfg.Model,
		mon:        monitor.New(),
		tables:     make(map[string]*columnar.Table),
		stats:      make(map[string]*optimizer.TableStats),
		thresholds: cfg.Thresholds,
		gpuEnabled: cfg.Devices > 0,
	}
	reg, err := hostmem.NewRegistry(cfg.PinnedBytes)
	if err != nil {
		return nil, err
	}
	e.registry = reg
	e.tracer.Store(cfg.Tracer)
	if cfg.Devices > 0 {
		for i := 0; i < cfg.Devices; i++ {
			e.devices = append(e.devices, gpu.NewDevice(i, cfg.DeviceSpec,
				gpu.WithSink(engineSink{e}), gpu.WithModel(cfg.Model), gpu.WithFaults(cfg.Faults)))
		}
		s, err := sched.New(e.devices...)
		if err != nil {
			return nil, err
		}
		s.SetSink(e.mon)
		e.sched = s
		if !cfg.NoFusion {
			e.fcache = fusion.NewCache()
		}
	}
	return e, nil
}

// Register adds a table to the catalog and analyzes its statistics.
func (e *Engine) Register(tbl *columnar.Table) error {
	if tbl == nil {
		return errors.New("engine: nil table")
	}
	if _, dup := e.tables[tbl.Name()]; dup {
		return fmt.Errorf("engine: table %q already registered", tbl.Name())
	}
	e.tables[tbl.Name()] = tbl
	e.stats[tbl.Name()] = optimizer.Analyze(tbl)
	return nil
}

// Table returns a registered table, or nil.
func (e *Engine) Table(name string) *columnar.Table { return e.tables[name] }

// TableNames lists registered tables.
func (e *Engine) TableNames() []string {
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	return out
}

// Stats returns a table's analyzed statistics, or nil.
func (e *Engine) Stats(name string) *optimizer.TableStats { return e.stats[name] }

// Monitor exposes the integrated performance monitor.
func (e *Engine) Monitor() *monitor.Monitor { return e.mon }

// Tracer returns the attached span tracer, or nil.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer.Load() }

// SetTracer attaches (or, with nil, detaches) a span tracer at runtime.
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tracer.Store(tr) }

// engineSink fans device events out to the performance monitor and, when
// one is attached, the tracer. The indirection exists because gpu cannot
// import trace's consumers: the tracer learns about kernels, transfers
// and faults here, keyed by the span the device operation ran under.
type engineSink struct{ e *Engine }

func (s engineSink) RecordGPUEvent(ev gpu.Event) {
	s.e.mon.RecordGPUEvent(ev)
	if tr := s.e.tracer.Load(); tr != nil {
		tr.RecordDeviceEvent(ev.Span, ev.Device, ev.Kind.String(), ev.Name, ev.Bytes, ev.Modeled)
	}
}

// Devices exposes the GPU fleet (empty when offload is disabled).
func (e *Engine) Devices() []*gpu.Device { return e.devices }

// Scheduler exposes the multi-GPU scheduler (nil without devices).
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// GPUEnabled reports whether offload is currently on.
func (e *Engine) GPUEnabled() bool { return e.gpuEnabled && e.sched != nil }

// SetGPUEnabled toggles offload at runtime — how the benchmarks produce
// their "GPU off" baselines on the same engine.
func (e *Engine) SetGPUEnabled(on bool) { e.gpuEnabled = on }

// maxDeviceMem returns the largest attached device's memory, 0 if none.
func (e *Engine) maxDeviceMem() int64 {
	if !e.GPUEnabled() {
		return 0
	}
	var m int64
	for _, d := range e.devices {
		if d.TotalMemory() > m {
			m = d.TotalMemory()
		}
	}
	return m
}

// OpStat describes one executed operator.
type OpStat struct {
	Op      string
	Detail  string
	Rows    int
	Modeled vtime.Duration
}

// WallBreakdown attributes one query's real wall-clock time to phases.
// Unlike Modeled it is machine- and load-dependent — informational,
// never gated — but it is what the wall-clock speed campaign needs to
// see: where the real milliseconds go. Parse/Plan cover the SQL
// front-end (zero for pre-lowered plans); Exec covers the plan's
// execution, with the GPU-kernel / host-evaluator / gather split
// measured at the operator call sites (their sum is ≤ Exec; the residue
// is operator bookkeeping and modeled-time accounting).
type WallBreakdown struct {
	Parse      time.Duration
	Plan       time.Duration
	Exec       time.Duration
	ExecGPU    time.Duration
	ExecHost   time.Duration
	ExecGather time.Duration
}

// Result is a completed query.
type Result struct {
	// Table holds the result rows.
	Table *columnar.Table
	// Columns names the output columns in order.
	Columns []string
	// Modeled is the end-to-end modeled execution time.
	Modeled vtime.Duration
	// Profile is the query's resource demand for the concurrency
	// simulator.
	Profile des.Profile
	// Ops lists per-operator statistics in execution order.
	Ops []OpStat
	// GPUUsed reports whether any operator took a device path.
	GPUUsed bool
	// Wall is the query's wall-clock phase attribution.
	Wall WallBreakdown
	// TraceSeq is the query's 1-based sequence number on the attached
	// tracer (0 when tracing is off) — the key for carving its span
	// subtree out of a shared tracer.
	TraceSeq uint64
}

// Query parses, plans and executes one SQL statement.
func (e *Engine) Query(sql string) (*Result, error) {
	return e.QueryNamed("", sql)
}

// QueryNamed executes sql under an explicit query name. The name labels
// the query's root span in the trace and its rollup row in the monitor;
// empty picks an automatic "q<N>" name.
func (e *Engine) QueryNamed(name, sql string) (*Result, error) {
	return e.QueryNamedCtx(context.Background(), name, sql)
}

// QueryCtx is Query bounded by a context: execution checks the context
// between operators and aborts with its error as soon as it is canceled
// or its deadline passes, releasing every reservation it holds.
func (e *Engine) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	return e.QueryNamedCtx(ctx, "", sql)
}

// QueryNamedCtx is QueryNamed bounded by a context (see QueryCtx).
func (e *Engine) QueryNamedCtx(ctx context.Context, name, sql string) (*Result, error) {
	return e.QueryNamedCtxAttrs(ctx, name, sql)
}

// QueryNamedCtxAttrs is QueryNamedCtx with caller attributes annotated
// onto the query's root span when a tracer is attached — the serving
// layer uses it to attribute admission decisions (class, queue wait,
// session) in the same trace that holds the query's operator spans.
func (e *Engine) QueryNamedCtxAttrs(ctx context.Context, name, sql string, attrs ...trace.Attr) (*Result, error) {
	// Each phase runs under prof.Phase so CPU-profile samples carry
	// class/phase/request labels and the request's resource account (when
	// one is bound to ctx) charges exactly the durations the query log
	// will record — the two surfaces reconcile by construction.
	var stmt *sqlparse.SelectStmt
	parseWall, err := prof.Phase(ctx, "parse", func(ctx context.Context) error {
		var perr error
		stmt, perr = sqlparse.Parse(sql)
		return perr
	})
	if err != nil {
		return nil, err
	}
	var p *plan.Plan
	planWall, err := prof.Phase(ctx, "plan", func(ctx context.Context) error {
		var perr error
		p, perr = plan.Build(stmt)
		return perr
	})
	if err != nil {
		return nil, err
	}
	var res *Result
	execWall, err := prof.Phase(ctx, "exec", func(ctx context.Context) error {
		var xerr error
		res, _, xerr = e.executeWith(ctx, name, p, sql, nil, attrs...)
		return xerr
	})
	if res != nil {
		res.Wall.Parse = parseWall
		res.Wall.Plan = planWall
		res.Wall.Exec = execWall
	}
	return res, err
}

// Explain parses and plans a statement and renders the logical plan plus
// the optimizer's group-by path prognosis, without executing.
func (e *Engine) Explain(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	p, err := plan.Build(stmt)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %s\n", p.Root)
	e.explainAggregates(&sb, p.Root)
	return sb.String(), nil
}

// explainAggregates annotates every Aggregate node with the Figure-3
// decision the engine would take from table statistics.
func (e *Engine) explainAggregates(sb *strings.Builder, n plan.Node) {
	for _, pr := range e.prognoses(n) {
		fmt.Fprintf(sb, "groupby keys=%v: est rows<=%d groups~%d -> %s (%s)\n",
			pr.Keys, pr.Estimate.Rows, pr.Estimate.Groups, pr.Decision, pr.Reason)
	}
}

// planInput descends one level along a plan's input spine.
func planInput(n plan.Node) plan.Node {
	switch x := n.(type) {
	case *plan.Join:
		return x.Left
	case *plan.Filter:
		return x.Input
	case *plan.Derive:
		return x.Input
	case *plan.Aggregate:
		return x.Input
	case *plan.Window:
		return x.Input
	case *plan.Project:
		return x.Input
	case *plan.Sort:
		return x.Input
	case *plan.Limit:
		return x.Input
	default:
		return nil
	}
}

// prognoses computes the plan-time Figure-3 prognosis for every
// Aggregate in the plan, in plan (top-down) order. EXPLAIN renders
// these directly; EXPLAIN ANALYZE hands them to the collector so each
// executed group-by can be audited against its plan-time call.
func (e *Engine) prognoses(n plan.Node) []optimizer.Prognosis {
	var out []optimizer.Prognosis
	// Estimate base cardinality: the scan's table rows (filters unknown
	// until runtime; the estimate is the upper bound the optimizer has).
	var baseRows int64 = -1
	for cur := n; cur != nil; cur = planInput(cur) {
		if s, ok := cur.(*plan.Scan); ok {
			if ts := e.stats[s.Table]; ts != nil {
				baseRows = int64(ts.Rows)
			}
		}
	}
	for cur := n; cur != nil; cur = planInput(cur) {
		agg, ok := cur.(*plan.Aggregate)
		if !ok {
			continue
		}
		var groups uint64
		for cc := cur; cc != nil; cc = planInput(cc) {
			if s, ok := cc.(*plan.Scan); ok {
				if ts := e.stats[s.Table]; ts != nil {
					groups = ts.EstimateGroups(agg.Keys, baseRows)
				}
			}
		}
		out = append(out, optimizer.Prognose(agg.Keys, optimizer.Estimate{
			Rows:   baseRows,
			Groups: int64(groups),
			// Rough demand: rows * (key + payload vectors).
			MemoryDemand: baseRows * int64(8*(1+len(agg.Aggs))),
		}, e.thresholds, e.maxDeviceMem()))
	}
	return out
}

// Execute runs a lowered plan.
func (e *Engine) Execute(p *plan.Plan) (*Result, error) {
	res, _, err := e.executeWith(context.Background(), "", p, "", nil)
	return res, err
}

// executeWith runs a lowered plan under a query root span when a tracer
// is attached (consecutive queries lay out back to back on the engine's
// virtual clock, so one trace file holds a whole session), with an
// optional explain collector threaded through the query context. It
// additionally returns the query's 1-based sequence number on the tracer
// (0 when tracing is off), which EXPLAIN ANALYZE uses to carve the
// query's span subtree out of a shared tracer. attrs are annotated onto
// the root span (admission attribution from the serving layer).
func (e *Engine) executeWith(ctx context.Context, name string, p *plan.Plan, sql string, col *explain.Collector, attrs ...trace.Attr) (*Result, uint64, error) {
	wallStart := time.Now()
	q := qctx{ctx: ctx, col: col, wall: &wallAcc{}}
	requestID := qlog.RequestIDFrom(ctx)
	tr := e.tracer.Load()
	if tr != nil {
		e.clockMu.Lock()
		q.base = e.clock
		e.clockMu.Unlock()
		q.tc = tr.StartQuery(name, q.base)
		if sql != "" {
			q.tc.Annotate(trace.Str("sql", sql))
		}
		if requestID != "" {
			q.tc.Annotate(trace.Str("request_id", requestID))
		}
		if len(attrs) > 0 {
			q.tc.Annotate(attrs...)
		}
	}
	f, err := e.exec(p.Root, q)
	if err != nil {
		if q.tc.Enabled() {
			q.tc.End(q.base, trace.Str("error", err.Error()))
		}
		return nil, q.tc.Query(), err
	}
	cols := p.Output
	if len(cols) == 0 {
		for _, c := range f.tbl.Columns() {
			cols = append(cols, c.Name())
		}
	}
	res := &Result{
		Table:    f.tbl,
		Columns:  cols,
		Modeled:  f.modeled,
		Profile:  des.Profile{Name: "query", Phases: mergePhases(f.phases)},
		Ops:      f.ops,
		GPUUsed:  f.gpuUsed,
		TraceSeq: q.tc.Query(),
		Wall: WallBreakdown{
			Exec:       time.Since(wallStart),
			ExecGPU:    q.wall.gpuD(),
			ExecHost:   q.wall.hostD(),
			ExecGather: q.wall.gatherD(),
		},
	}
	if q.tc.Enabled() {
		gpuAttr := int64(0)
		if f.gpuUsed {
			gpuAttr = 1
		}
		q.tc.End(f.at(), trace.Int("rows", int64(f.tbl.Rows())), trace.Int("gpu", gpuAttr))
		e.clockMu.Lock()
		e.clock = e.clock.Add(f.modeled)
		e.clockMu.Unlock()
	}
	if name == "" {
		name = "query"
	}
	e.mon.RecordQuery(name, f.modeled, f.gpuUsed)
	e.mon.RecordQueryWall(vtime.Duration(time.Since(wallStart).Seconds()))
	// The scheduler's breaker probations expire in virtual time; each
	// query's modeled duration is what makes that clock move.
	if e.sched != nil {
		e.sched.Advance(res.Modeled)
	}
	return res, q.tc.Query(), nil
}

// qctx is the per-query trace context threaded through execution: the
// query's root span plus its start offset on the engine's virtual clock.
// The zero value (tracer detached) makes every span operation a no-op.
// col, when set, collects per-operator explain records; depth is the
// current plan-tree depth (root 0), bumped by deeper() at every exec
// recursion so records carry their node's depth even though the frame
// itself carries the deepest (scan-level) context.
type qctx struct {
	tc    trace.Context
	base  vtime.Time
	col   *explain.Collector
	depth int
	// wall accumulates the query's GPU-kernel / host-evaluator / gather
	// wall-clock split; atomics because sort jobs and the fused-chain
	// fill overlap run concurrently. nil-safe (no-op) for zero qctx.
	wall *wallAcc
	// ctx bounds the query: execution checks it between operators and
	// aborts as soon as it reports done. nil means unbounded.
	ctx context.Context
	// chain, when set, is the fusion chain record for the aggregate
	// currently being descended into; the filter/derive exec hooks
	// record entry table and stage shapes on it.
	chain *chainRec
}

// wallAcc accumulates per-query wall-clock nanoseconds by work kind.
type wallAcc struct {
	gpu, host, gather atomic.Int64
}

func (w *wallAcc) gpuD() time.Duration    { return time.Duration(w.gpu.Load()) }
func (w *wallAcc) hostD() time.Duration   { return time.Duration(w.host.Load()) }
func (w *wallAcc) gatherD() time.Duration { return time.Duration(w.gather.Load()) }

// wallGPU charges wall time since start to the GPU-kernel phase.
func (q qctx) wallGPU(start time.Time) {
	if q.wall != nil {
		q.wall.gpu.Add(int64(time.Since(start)))
	}
}

// wallHost charges wall time since start to the host-evaluator phase.
func (q qctx) wallHost(start time.Time) {
	if q.wall != nil {
		q.wall.host.Add(int64(time.Since(start)))
	}
}

// wallGather charges wall time since start to the gather phase.
func (q qctx) wallGather(start time.Time) {
	if q.wall != nil {
		q.wall.gather.Add(int64(time.Since(start)))
	}
}

// deeper returns the context one plan level down.
func (q qctx) deeper() qctx {
	q.depth++
	return q
}

// err reports the query's cancellation state: the context error once the
// context is canceled or past its deadline, nil otherwise (including for
// unbounded queries).
func (q qctx) err() error {
	if q.ctx == nil {
		return nil
	}
	return q.ctx.Err()
}

// record hooks one executed operator into the explain collector; a nil
// collector makes it a no-op. start/end bound the operator on the
// query's virtual timeline (end - start includes retry backoff, which
// the OpStat's Modeled excludes).
func (q qctx) record(st OpStat, span trace.SpanID, start, end vtime.Time, agg *explain.AggRecord, srt *explain.SortRecord) {
	if q.col == nil {
		return
	}
	q.col.Record(explain.OpRecord{
		Op: st.Op, Detail: st.Detail, Depth: q.depth, Rows: st.Rows,
		Span: span, Start: start, End: end, Modeled: st.Modeled,
		Agg: agg, Sort: srt,
	})
}

// frame is an intermediate execution state.
type frame struct {
	q       qctx
	tbl     *columnar.Table
	modeled vtime.Duration
	phases  []des.Phase
	ops     []OpStat
	gpuUsed bool
}

// at returns the frame's current offset on the trace timeline: the query
// start plus everything charged so far. Operator spans begin at at(),
// charge their modeled time, and end at the new at(), which lays children
// of the query root out sequentially in virtual time.
func (f *frame) at() vtime.Time { return f.q.base.Add(f.modeled) }

// begin opens an operator span at the frame's current offset.
func (f *frame) begin(cat, name string) trace.Context {
	return f.q.tc.Begin(cat, name, f.at())
}

// addCPU charges host time to the frame as both modeled duration and a
// DES phase (core-seconds at the engine's degree).
func (e *Engine) addCPU(f *frame, d vtime.Duration) {
	if d <= 0 {
		return
	}
	f.modeled += d
	par := e.model.CPU.EffectiveParallelism(e.cfg.Degree)
	f.phases = append(f.phases, des.Phase{
		Kind:   des.CPUPhase,
		Work:   d.Seconds() * par,
		MaxPar: par,
	})
}

// addGPU charges device time and memory residency to the frame.
func (e *Engine) addGPU(f *frame, d vtime.Duration, mem int64) {
	if d <= 0 {
		return
	}
	f.modeled += d
	f.phases = append(f.phases, des.Phase{Kind: des.GPUPhase, Work: d.Seconds(), Mem: mem})
	f.gpuUsed = true
}

// mergePhases coalesces adjacent CPU phases to keep profiles small.
func mergePhases(ps []des.Phase) []des.Phase {
	var out []des.Phase
	for _, p := range ps {
		if p.Work <= 0 {
			continue
		}
		n := len(out)
		if n > 0 && out[n-1].Kind == des.CPUPhase && p.Kind == des.CPUPhase && out[n-1].MaxPar == p.MaxPar {
			out[n-1].Work += p.Work
			continue
		}
		out = append(out, p)
	}
	return out
}
