package engine

import (
	"errors"
	"fmt"

	"blugpu/internal/des"
)

// Stream is a sequence of SQL statements one simulated user executes back
// to back.
type Stream []string

// ConcurrentResult reports a simulated multi-user run.
type ConcurrentResult struct {
	// Res is the discrete-event simulation outcome: makespan, per-query
	// times, device-memory series.
	Res *des.Result
	// Profiles holds the measured per-SQL resource profiles (one per
	// distinct statement), useful for inspection.
	Profiles map[string]des.Profile
}

// RunConcurrent executes the streams against the engine's modeled
// hardware: each distinct statement runs once functionally to measure its
// resource profile, then the streams replay through the discrete-event
// simulator sharing the host CPU pool and the device fleet. This is the
// paper's multi-user methodology (Sections 5.2.2 and 5.3) as a library
// call.
//
// sampleEvery adds periodic device-memory samples (seconds of virtual
// time; 0 keeps event-driven samples only).
func (e *Engine) RunConcurrent(streams []Stream, sampleEvery float64) (*ConcurrentResult, error) {
	if len(streams) == 0 {
		return nil, errors.New("engine: no streams")
	}
	profiles := map[string]des.Profile{}
	for _, s := range streams {
		for _, sql := range s {
			if _, done := profiles[sql]; done {
				continue
			}
			res, err := e.Query(sql)
			if err != nil {
				return nil, fmt.Errorf("engine: profiling %q: %w", sql, err)
			}
			p := res.Profile
			p.Name = sql
			profiles[sql] = p
		}
	}
	cfg := des.Config{
		CPUCapacity: e.model.CPU.EffectiveParallelism(e.model.CPU.HardwareThreads()),
		SampleEvery: sampleEvery,
	}
	if e.GPUEnabled() {
		for _, d := range e.devices {
			cfg.Devices = append(cfg.Devices, des.DeviceSpec{Mem: d.TotalMemory()})
		}
	}
	desStreams := make([][]des.Profile, len(streams))
	for i, s := range streams {
		for _, sql := range s {
			desStreams[i] = append(desStreams[i], profiles[sql])
		}
	}
	res, err := des.Run(cfg, desStreams)
	if err != nil {
		return nil, err
	}
	return &ConcurrentResult{Res: res, Profiles: profiles}, nil
}
