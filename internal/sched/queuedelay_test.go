package sched

import (
	"testing"
	"time"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// TestQueueDelays proves blocking placements record a per-device delay
// sample: immediate grants observe ~0, a placement that had to wait for
// a release observes the wait.
func TestQueueDelays(t *testing.T) {
	spec := vtime.Default().GPU
	spec.DeviceMemory = 1 << 20
	d := gpu.NewDevice(0, spec)
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}

	if qd := s.QueueDelays(); len(qd) != 0 {
		t.Fatalf("fresh scheduler has delays: %+v", qd)
	}

	// Immediate grant: one ~0 sample.
	p1, err := s.Place(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	qd := s.QueueDelays()
	if len(qd) != 1 || qd[0].Device != 0 || qd[0].Count != 1 {
		t.Fatalf("after immediate grant: %+v", qd)
	}

	// Saturated device: the second Place blocks until p1 releases.
	release := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		p1.Release()
		close(release)
	}()
	p2, err := s.Place(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	<-release
	defer p2.Release()

	qd = s.QueueDelays()
	if len(qd) != 1 || qd[0].Count != 2 {
		t.Fatalf("after blocked grant: %+v", qd)
	}
	if qd[0].MaxSeconds < 0.015 {
		t.Fatalf("max delay %.4fs, want >= the ~20ms block", qd[0].MaxSeconds)
	}
	if qd[0].SumSeconds < qd[0].MaxSeconds {
		t.Fatalf("sum %.4f < max %.4f", qd[0].SumSeconds, qd[0].MaxSeconds)
	}
	if len(qd[0].Buckets) == 0 {
		t.Fatal("no exported buckets")
	}
	last := qd[0].Buckets[len(qd[0].Buckets)-1]
	if last.CumCount != 2 {
		t.Fatalf("cumulative bucket count = %d, want 2", last.CumCount)
	}
}
