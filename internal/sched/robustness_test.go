package sched

// Robustness coverage: the Devices() copy, reservation-race retry across
// the fleet, the circuit breaker's trip/probe/recover cycle, PlaceCtx
// cancellation, partitioned rollback under injected faults, and
// reservation-leak stress under -race.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"blugpu/internal/fault"
	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// recordSink is a test Sink.
type recordSink struct {
	mu       sync.Mutex
	retries  []string
	faulted  int
	trips    []int
	recovers []int
}

func (r *recordSink) RecordGPURetry(op string, faulted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retries = append(r.retries, op)
	if faulted {
		r.faulted++
	}
}

func (r *recordSink) RecordBreaker(device int, tripped bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tripped {
		r.trips = append(r.trips, device)
	} else {
		r.recovers = append(r.recovers, device)
	}
}

func faultyFleet(cfg fault.Config) (*Scheduler, *fault.Injector, []*gpu.Device) {
	inj := fault.New(cfg)
	d0 := gpu.NewDevice(0, vtime.TeslaK40(), gpu.WithFaults(inj))
	d1 := gpu.NewDevice(1, vtime.TeslaK40(), gpu.WithFaults(inj))
	s, err := New(d0, d1)
	if err != nil {
		panic(err)
	}
	return s, inj, []*gpu.Device{d0, d1}
}

func fleetFree(devs []*gpu.Device) (free, total int64) {
	for _, d := range devs {
		free += d.FreeMemory()
		total += d.TotalMemory()
	}
	return free, total
}

func TestDevicesReturnsCopy(t *testing.T) {
	s, _ := twoK40s()
	got := s.Devices()
	got[0], got[1] = got[1], got[0]
	got2 := s.Devices()
	if got2[0].ID() != 0 || got2[1].ID() != 1 {
		t.Error("mutating the Devices() result changed the scheduler's fleet")
	}
	got2 = got2[:1]
	if len(s.Devices()) != 2 {
		t.Error("truncating the Devices() result changed the fleet")
	}
}

// A reservation that fails on the best-ranked device must move on to
// the remaining eligible devices instead of giving up.
func TestTryPlaceRetriesNextDevice(t *testing.T) {
	s, inj, _ := faultyFleet(fault.Config{})
	sink := &recordSink{}
	s.SetSink(sink)
	inj.KillDevice(0) // device 0 wins the idle tie-break, then its Reserve fails
	p, err := s.TryPlace(1 << 30)
	if err != nil {
		t.Fatalf("TryPlace gave up instead of retrying device 1: %v", err)
	}
	defer p.Release()
	if p.Device().ID() != 1 {
		t.Errorf("placed on device %d, want 1", p.Device().ID())
	}
	if len(sink.retries) != 1 || sink.retries[0] != "place" || sink.faulted != 1 {
		t.Errorf("retry accounting: ops=%v faulted=%d, want one faulted place", sink.retries, sink.faulted)
	}
}

// When every candidate's reservation fails, the terminal error wraps
// both ErrNoDevice and the last reservation failure.
func TestTryPlaceTerminalErrorClassifiable(t *testing.T) {
	s, inj, _ := faultyFleet(fault.Config{})
	inj.KillDevice(0)
	inj.KillDevice(1)
	_, err := s.TryPlace(1 << 30)
	if !errors.Is(err, ErrNoDevice) {
		t.Fatalf("want ErrNoDevice, got %v", err)
	}
	if !errors.Is(err, gpu.ErrInjected) || !errors.Is(err, gpu.ErrDeviceLost) {
		t.Errorf("terminal error should carry the fault cause: %v", err)
	}
}

func TestCircuitBreakerTripProbeRecover(t *testing.T) {
	s, inj, devs := faultyFleet(fault.Config{})
	sink := &recordSink{}
	s.SetSink(sink)
	s.SetBreaker(3, 100*vtime.Millisecond)
	inj.KillDevice(0)

	// Three consecutive failed placements trip device 0's breaker.
	for i := 0; i < 3; i++ {
		p, err := s.TryPlace(1 << 30)
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	h := s.Health()
	if !h[0].Quarantined || h[0].Trips != 1 {
		t.Fatalf("device 0 not quarantined after 3 failures: %+v", h[0])
	}
	if len(sink.trips) != 1 || sink.trips[0] != 0 {
		t.Errorf("sink trips = %v, want [0]", sink.trips)
	}

	// While quarantined, device 0 is never touched: its fault counter
	// stays frozen across many placements.
	before := inj.Counts().Total()
	for i := 0; i < 5; i++ {
		p, err := s.TryPlace(1 << 30)
		if err != nil {
			t.Fatal(err)
		}
		if p.Device().ID() != 1 {
			t.Errorf("placement %d on quarantined device", i)
		}
		p.Release()
	}
	if got := inj.Counts().Total(); got != before {
		t.Errorf("quarantined device still probed: faults %d -> %d", before, got)
	}

	// Probation expiry re-admits half-open: one probe, and since the
	// device is still dead, one more failure re-trips immediately.
	s.Advance(200 * vtime.Millisecond)
	p, err := s.TryPlace(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	if got := inj.Counts().Total(); got != before+1 {
		t.Errorf("half-open probe count: faults %d -> %d, want one probe", before, got)
	}
	if h := s.Health(); !h[0].Quarantined || h[0].Trips != 2 {
		t.Errorf("failed probe should re-trip immediately: %+v", h[0])
	}

	// Revive the device; after probation the next probe succeeds and the
	// breaker records a recovery.
	inj.ReviveDevice(0)
	s.Advance(200 * vtime.Millisecond)
	p, err = s.TryPlace(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if p.Device().ID() != 0 {
		t.Errorf("revived device not re-admitted: placed on %d", p.Device().ID())
	}
	s.ReportSuccess(p.Device())
	p.Release()
	h = s.Health()
	if h[0].Quarantined || h[0].Recoveries != 1 || h[0].ConsecutiveFails != 0 {
		t.Errorf("recovery not recorded: %+v", h[0])
	}
	if len(sink.recovers) != 1 || sink.recovers[0] != 0 {
		t.Errorf("sink recoveries = %v, want [0]", sink.recovers)
	}
	if free, total := fleetFree(devs); free != total {
		t.Errorf("breaker cycle leaked %d bytes", total-free)
	}
}

func TestPlaceCtxCancel(t *testing.T) {
	s, _ := twoK40s()
	// Fill the fleet so PlaceCtx must wait.
	p0, err := s.TryPlace(11 << 30)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.TryPlace(11 << 30)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Release()
	defer p1.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := s.PlaceCtx(ctx, 4<<30); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("PlaceCtx did not unblock promptly on cancellation")
	}

	// Pre-cancelled context returns immediately without placing.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := s.PlaceCtx(done, 4<<30); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestPlaceCtxWakesOnRelease(t *testing.T) {
	s, _ := twoK40s()
	p0, _ := s.TryPlace(11 << 30)
	p1, _ := s.TryPlace(11 << 30)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan *Placement, 1)
	errc := make(chan error, 1)
	go func() {
		p, err := s.PlaceCtx(ctx, 4<<30)
		if err != nil {
			errc <- err
			return
		}
		got <- p
	}()
	time.Sleep(10 * time.Millisecond)
	p0.Release()
	select {
	case p := <-got:
		p.Release()
	case err := <-errc:
		t.Fatalf("PlaceCtx errored: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("PlaceCtx did not wake on release")
	}
	p1.Release()
}

// PlacePartitioned with an injected reservation fault must roll back
// every chunk it already reserved — verified by fleet-free-memory
// accounting.
func TestPlacePartitionedRollbackUnderFaults(t *testing.T) {
	s, inj, devs := faultyFleet(fault.Config{})
	inj.KillDevice(1)
	// 20 GB needs both 12 GB cards; device 1's chunk reservation faults,
	// so the chunk on device 0 must be released.
	_, _, err := s.PlacePartitioned(20 << 30)
	if !errors.Is(err, ErrNoDevice) {
		t.Fatalf("want ErrNoDevice, got %v", err)
	}
	if !errors.Is(err, gpu.ErrInjected) {
		t.Errorf("rollback error should carry the fault cause: %v", err)
	}
	free, total := fleetFree(devs)
	if free != total {
		t.Errorf("rollback leaked %d bytes", total-free)
	}
	// Health: the faulted device took one failure.
	if h := s.Health(); h[1].ConsecutiveFails != 1 {
		t.Errorf("device 1 failure not recorded: %+v", h[1])
	}
}

// Concurrent Place/Release stress (run under -race): after all workers
// drain, the fleet's free memory must equal its capacity — no
// reservation leaks, with and without injected faults.
func TestConcurrentPlaceReleaseNoLeak(t *testing.T) {
	s, devs := twoK40s()
	var wg sync.WaitGroup
	const workers = 16
	const iters = 40
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				demand := int64(1+rng.Intn(4)) << 30
				p, err := s.Place(demand)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
				p.Release()
				if rng.Intn(8) == 0 {
					p.Release() // double release must stay safe
				}
			}
		}(w)
	}
	wg.Wait()
	free, total := fleetFree(devs)
	if free != total {
		t.Errorf("stress leaked %d bytes", total-free)
	}
	for _, snap := range s.Snapshot() {
		if snap.Outstanding != 0 {
			t.Errorf("device %d still shows outstanding jobs", snap.Device)
		}
	}
}

// Same stress with injected reservation faults: TryPlace may fail, but
// whatever succeeds must release cleanly and the accounting must
// balance.
func TestConcurrentTryPlaceFaultsNoLeak(t *testing.T) {
	s, _, devs := faultyFleet(fault.Config{Seed: 11, Reserve: 0.3})
	var wg sync.WaitGroup
	const workers = 16
	const iters = 60
	var placed, failed int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				demand := int64(1+rng.Intn(4)) << 30
				p, err := s.TryPlace(demand)
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				mu.Lock()
				placed++
				mu.Unlock()
				p.Release()
			}
		}(w)
	}
	wg.Wait()
	free, total := fleetFree(devs)
	if free != total {
		t.Errorf("faulted stress leaked %d bytes", total-free)
	}
	if placed == 0 {
		t.Error("every TryPlace failed; stress exercised nothing")
	}
	t.Logf("placed=%d failed=%d", placed, failed)
}
