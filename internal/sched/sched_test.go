package sched

import (
	"errors"
	"sync"
	"testing"
	"time"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

func twoK40s() (*Scheduler, []*gpu.Device) {
	d0 := gpu.NewDevice(0, vtime.TeslaK40())
	d1 := gpu.NewDevice(1, vtime.TeslaK40())
	s, err := New(d0, d1)
	if err != nil {
		panic(err)
	}
	return s, []*gpu.Device{d0, d1}
}

func TestNewRequiresDevices(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty fleet should be rejected")
	}
}

func TestTryPlacePicksLeastLoaded(t *testing.T) {
	s, devs := twoK40s()
	// Load device 0 with a big reservation so device 1 has more free memory.
	r, err := devs[0].Reserve(8 << 30)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	p, err := s.TryPlace(6 << 30)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if p.Device().ID() != 1 {
		t.Errorf("placed on device %d, want 1 (more free memory)", p.Device().ID())
	}
}

func TestTryPlaceErrNoDevice(t *testing.T) {
	s, devs := twoK40s()
	r0, _ := devs[0].Reserve(11 << 30)
	r1, _ := devs[1].Reserve(11 << 30)
	defer r0.Release()
	defer r1.Release()
	if _, err := s.TryPlace(4 << 30); !errors.Is(err, ErrNoDevice) {
		t.Errorf("want ErrNoDevice, got %v", err)
	}
}

func TestTooLarge(t *testing.T) {
	s, _ := twoK40s()
	if _, err := s.TryPlace(64 << 30); !errors.Is(err, ErrTooLarge) {
		t.Errorf("want ErrTooLarge, got %v", err)
	}
	if _, err := s.Place(64 << 30); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Place should not block on impossible demand, got %v", err)
	}
}

func TestInvalidDemand(t *testing.T) {
	s, _ := twoK40s()
	if _, err := s.TryPlace(0); err == nil {
		t.Error("TryPlace(0) should fail")
	}
	if _, err := s.Place(-1); err == nil {
		t.Error("Place(-1) should fail")
	}
	if _, _, err := s.PlacePartitioned(0); err == nil {
		t.Error("PlacePartitioned(0) should fail")
	}
}

func TestPlaceWaitsForRelease(t *testing.T) {
	s, _ := twoK40s()
	// Fill both devices via the scheduler.
	p0, err := s.TryPlace(11 << 30)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.TryPlace(11 << 30)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Placement, 1)
	go func() {
		p, err := s.Place(4 << 30)
		if err != nil {
			t.Error(err)
		}
		done <- p
	}()
	select {
	case <-done:
		t.Fatal("Place returned before memory was released")
	case <-time.After(30 * time.Millisecond):
	}
	p0.Release()
	select {
	case p := <-done:
		p.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("Place did not wake after release")
	}
	p1.Release()
}

func TestPlacementReleaseIdempotent(t *testing.T) {
	s, devs := twoK40s()
	p, err := s.TryPlace(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	p.Release()
	if devs[0].FreeMemory() != devs[0].TotalMemory() || devs[1].FreeMemory() != devs[1].TotalMemory() {
		t.Error("double release corrupted device accounting")
	}
}

func TestPlacePartitioned(t *testing.T) {
	s, devs := twoK40s()
	// 20 GB demand cannot fit on one 12 GB card but fits across two.
	placements, sizes, err := s.PlacePartitioned(20 << 30)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, sz := range sizes {
		total += sz
	}
	if total != 20<<30 {
		t.Errorf("chunk sizes sum to %d, want %d", total, int64(20)<<30)
	}
	if len(placements) != 2 {
		t.Errorf("placements = %d, want 2", len(placements))
	}
	for _, p := range placements {
		p.Release()
	}
	for _, d := range devs {
		if d.FreeMemory() != d.TotalMemory() {
			t.Error("partitioned release leaked memory")
		}
	}
}

func TestPlacePartitionedRollsBackOnFailure(t *testing.T) {
	s, devs := twoK40s()
	r, _ := devs[1].Reserve(11 << 30)
	defer r.Release()
	// 20 GB no longer fits across the fleet; the chunk reserved on device
	// 0 must be rolled back.
	if _, _, err := s.PlacePartitioned(20 << 30); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("want ErrNoDevice, got %v", err)
	}
	if devs[0].FreeMemory() != devs[0].TotalMemory() {
		t.Error("failed partitioned placement leaked memory on device 0")
	}
}

func TestConcurrentPlacement(t *testing.T) {
	s, devs := twoK40s()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := s.Place(2 << 30)
			if err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
			p.Release()
		}()
	}
	wg.Wait()
	for _, d := range devs {
		if d.FreeMemory() != d.TotalMemory() {
			t.Errorf("device %d leaked memory", d.ID())
		}
	}
}

func TestHeterogeneousFleet(t *testing.T) {
	small := vtime.TeslaK40()
	small.DeviceMemory = 2 << 30
	small.Name = "small"
	d0 := gpu.NewDevice(0, small)
	d1 := gpu.NewDevice(1, vtime.TeslaK40())
	s, _ := New(d0, d1)
	// A 4 GB task can only go to the K40.
	p, err := s.TryPlace(4 << 30)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if p.Device().ID() != 1 {
		t.Errorf("4GB task placed on device %d, want 1", p.Device().ID())
	}
	snaps := s.Snapshot()
	if len(snaps) != 2 || snaps[0].TotalMemory != 2<<30 {
		t.Errorf("snapshot mismatch: %+v", snaps)
	}
}
