// Package sched implements the multi-GPU task scheduler of paper
// Section 2.2.
//
// Every kernel call knows its device-memory demand in advance (computed
// from the query type, input size and internal data-structure sizes), so
// scheduling is admission control: the scheduler tracks, per device, the
// number of outstanding jobs and the free device memory, and places each
// task on the least-loaded device that can satisfy its whole demand up
// front. Devices need not be homogeneous.
//
// When no device fits, the caller chooses between the two behaviours of
// Section 2.1.1: wait until memory becomes available, or fall back to the
// CPU path.
package sched

import (
	"errors"
	"fmt"
	"sync"

	"blugpu/internal/gpu"
)

// ErrNoDevice is returned by TryPlace when no device can currently satisfy
// the task's memory demand.
var ErrNoDevice = errors.New("sched: no device can satisfy the request")

// ErrTooLarge is returned when the demand exceeds every device's total
// memory: waiting would never help. The engine sends such queries down the
// CPU path (the paper's prototype does the same above threshold T3).
var ErrTooLarge = errors.New("sched: request exceeds every device's capacity")

// Scheduler places tasks across a fleet of (possibly heterogeneous) GPUs.
// It is safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	devices []*gpu.Device
}

// New builds a scheduler over the given devices.
func New(devices ...*gpu.Device) (*Scheduler, error) {
	if len(devices) == 0 {
		return nil, errors.New("sched: at least one device required")
	}
	s := &Scheduler{devices: devices}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Devices returns the managed fleet.
func (s *Scheduler) Devices() []*gpu.Device { return s.devices }

// Placement is a task admitted to a device: a reservation covering its
// whole memory demand. Release both frees the reservation and wakes any
// tasks blocked in Place.
type Placement struct {
	sched *Scheduler
	res   *gpu.Reservation
	once  sync.Once
}

// Device returns the device the task was placed on.
func (p *Placement) Device() *gpu.Device { return p.res.Device() }

// Reservation returns the underlying memory reservation.
func (p *Placement) Reservation() *gpu.Reservation { return p.res }

// Release frees the reservation and wakes waiting tasks. Idempotent.
func (p *Placement) Release() {
	p.once.Do(func() {
		p.res.Release()
		p.sched.mu.Lock()
		p.sched.cond.Broadcast()
		p.sched.mu.Unlock()
	})
}

// TryPlace attempts to admit a task needing memNeed bytes, without
// blocking. Among devices with enough free memory it picks the one with
// the fewest outstanding jobs, breaking ties toward the most free memory.
func (s *Scheduler) TryPlace(memNeed int64) (*Placement, error) {
	if memNeed <= 0 {
		return nil, fmt.Errorf("sched: invalid memory demand %d", memNeed)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tryPlaceLocked(memNeed)
}

func (s *Scheduler) tryPlaceLocked(memNeed int64) (*Placement, error) {
	var best *gpu.Device
	bestJobs := 0
	var bestFree int64
	fitsAnywhere := false
	for _, d := range s.devices {
		if memNeed <= d.TotalMemory() {
			fitsAnywhere = true
		}
		free := d.FreeMemory()
		if free < memNeed {
			continue
		}
		jobs := d.Outstanding()
		if jobs >= d.Spec().MaxConcurrentKernels {
			continue
		}
		if best == nil || jobs < bestJobs || (jobs == bestJobs && free > bestFree) {
			best, bestJobs, bestFree = d, jobs, free
		}
	}
	if best == nil {
		if !fitsAnywhere {
			return nil, ErrTooLarge
		}
		return nil, ErrNoDevice
	}
	res, err := best.Reserve(memNeed)
	if err != nil {
		// Raced with a direct reservation on the device.
		return nil, ErrNoDevice
	}
	return &Placement{sched: s, res: res}, nil
}

// Place admits a task needing memNeed bytes, blocking until a device can
// satisfy it. It returns ErrTooLarge immediately when no device could ever
// fit the demand.
func (s *Scheduler) Place(memNeed int64) (*Placement, error) {
	if memNeed <= 0 {
		return nil, fmt.Errorf("sched: invalid memory demand %d", memNeed)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		p, err := s.tryPlaceLocked(memNeed)
		if err == nil {
			return p, nil
		}
		if errors.Is(err, ErrTooLarge) {
			return nil, err
		}
		s.cond.Wait()
	}
}

// PlacePartitioned splits a demand too large for one device across
// several, reserving a chunk on every device that can take one (paper
// Section 2.2: large inputs are range-partitioned across GPUs and the
// partial results merged). The caller gets one placement per chunk and the
// chunk sizes; it returns ErrNoDevice if the combined free memory cannot
// cover the demand right now.
func (s *Scheduler) PlacePartitioned(memNeed int64) ([]*Placement, []int64, error) {
	if memNeed <= 0 {
		return nil, nil, fmt.Errorf("sched: invalid memory demand %d", memNeed)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	remaining := memNeed
	var placements []*Placement
	var sizes []int64
	rollback := func() {
		for _, p := range placements {
			p.res.Release()
		}
	}
	for _, d := range s.devices {
		if remaining == 0 {
			break
		}
		free := d.FreeMemory()
		if free <= 0 {
			continue
		}
		chunk := remaining
		if chunk > free {
			chunk = free
		}
		res, err := d.Reserve(chunk)
		if err != nil {
			continue
		}
		placements = append(placements, &Placement{sched: s, res: res})
		sizes = append(sizes, chunk)
		remaining -= chunk
	}
	if remaining > 0 {
		rollback()
		return nil, nil, ErrNoDevice
	}
	return placements, sizes, nil
}

// Snapshot reports the fleet state for monitoring and tests.
type Snapshot struct {
	Device      int
	Outstanding int
	FreeMemory  int64
	TotalMemory int64
}

// Snapshot returns the current per-device state.
func (s *Scheduler) Snapshot() []Snapshot {
	out := make([]Snapshot, len(s.devices))
	for i, d := range s.devices {
		out[i] = Snapshot{
			Device:      d.ID(),
			Outstanding: d.Outstanding(),
			FreeMemory:  d.FreeMemory(),
			TotalMemory: d.TotalMemory(),
		}
	}
	return out
}
