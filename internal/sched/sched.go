// Package sched implements the multi-GPU task scheduler of paper
// Section 2.2.
//
// Every kernel call knows its device-memory demand in advance (computed
// from the query type, input size and internal data-structure sizes), so
// scheduling is admission control: the scheduler tracks, per device, the
// number of outstanding jobs and the free device memory, and places each
// task on the least-loaded device that can satisfy its whole demand up
// front. Devices need not be homogeneous.
//
// When no device fits, the caller chooses between the two behaviours of
// Section 2.1.1: wait until memory becomes available, or fall back to the
// CPU path.
//
// Beyond the paper's happy path, the scheduler tracks per-device health
// with a circuit breaker: a device whose operations keep failing (fault
// injection, simulated device loss) is quarantined after
// DefaultFailThreshold consecutive failures and re-admitted half-open
// after a virtual-time probation. The scheduler never asks a device
// whether it is "alive" — like a real driver stack, it discovers death
// through failed operations and routes around it.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"blugpu/internal/gpu"
	"blugpu/internal/monitor"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// ErrNoDevice is returned by TryPlace when no device can currently satisfy
// the task's memory demand.
var ErrNoDevice = errors.New("sched: no device can satisfy the request")

// ErrTooLarge is returned when the demand exceeds every device's total
// memory: waiting would never help. The engine sends such queries down the
// CPU path (the paper's prototype does the same above threshold T3).
var ErrTooLarge = errors.New("sched: request exceeds every device's capacity")

// DefaultFailThreshold is the consecutive-failure count that trips a
// device's circuit breaker.
const DefaultFailThreshold = 3

// DefaultProbation is the virtual-time quarantine after a breaker trip.
// After it elapses the device is re-admitted half-open: a single further
// failure re-trips immediately.
const DefaultProbation = 250 * vtime.Millisecond

// Sink receives degradation events. The engine's performance monitor
// (internal/monitor) implements it structurally; a nil sink discards.
// Implementations must be safe for concurrent use.
type Sink interface {
	// RecordGPURetry reports that an operation op failed on one device
	// and was retried on another. faulted marks injected faults (or
	// device loss) as opposed to organic admission races.
	RecordGPURetry(op string, faulted bool)
	// RecordBreaker reports a circuit-breaker transition for a device:
	// tripped (quarantined) or recovered.
	RecordBreaker(device int, tripped bool)
}

// health is the per-device circuit-breaker state.
type health struct {
	consecutive int
	quarantined bool
	reopenAt    vtime.Time
	trips       uint64
	recoveries  uint64
}

// Scheduler places tasks across a fleet of (possibly heterogeneous) GPUs.
// It is safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	devices []*gpu.Device
	byID    map[int]int // device ID -> index into devices/health
	health  []health
	now     vtime.Time
	sink    Sink

	failThreshold int
	probation     vtime.Duration

	// placements/placeFails count admissions and terminal placement
	// failures (the metrics layer exposes both). Same-placement retries
	// down the candidate ranking are reported to the sink, not counted
	// here.
	placements uint64
	placeFails uint64

	// queueDelay is the per-device histogram of wall-clock time blocking
	// Place/PlaceCtx callers spent waiting for a grant, keyed by the
	// device that ultimately granted it. Immediate grants observe ~0, so
	// the count is the placement count and the tail is the queue. Wall
	// time, not virtual: this measures real scheduler back-pressure.
	queueDelay map[int]*monitor.Hist
}

// New builds a scheduler over the given devices.
func New(devices ...*gpu.Device) (*Scheduler, error) {
	if len(devices) == 0 {
		return nil, errors.New("sched: at least one device required")
	}
	s := &Scheduler{
		devices:       devices,
		byID:          make(map[int]int, len(devices)),
		health:        make([]health, len(devices)),
		failThreshold: DefaultFailThreshold,
		probation:     DefaultProbation,
	}
	for i, d := range devices {
		if _, dup := s.byID[d.ID()]; dup {
			return nil, fmt.Errorf("sched: duplicate device id %d", d.ID())
		}
		s.byID[d.ID()] = i
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// SetSink attaches a degradation-event sink.
func (s *Scheduler) SetSink(sink Sink) {
	s.mu.Lock()
	s.sink = sink
	s.mu.Unlock()
}

// SetBreaker overrides the circuit-breaker tuning. threshold <= 0 or
// probation <= 0 keep the respective default.
func (s *Scheduler) SetBreaker(threshold int, probation vtime.Duration) {
	s.mu.Lock()
	if threshold > 0 {
		s.failThreshold = threshold
	}
	if probation > 0 {
		s.probation = probation
	}
	s.mu.Unlock()
}

// Devices returns a copy of the managed fleet. Callers may reorder or
// truncate the returned slice without affecting the scheduler.
func (s *Scheduler) Devices() []*gpu.Device {
	out := make([]*gpu.Device, len(s.devices))
	copy(out, s.devices)
	return out
}

// Advance moves the scheduler's virtual clock forward. The engine calls
// it with each query's modeled duration so quarantine probations expire
// in virtual time, consistent with the rest of the simulation.
func (s *Scheduler) Advance(d vtime.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
	// A probation may just have expired; wake blocked placers so they
	// reconsider the re-admitted device.
	s.cond.Broadcast()
}

// Now returns the scheduler's virtual clock.
func (s *Scheduler) Now() vtime.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// DeviceHealth is a snapshot of one device's breaker state.
type DeviceHealth struct {
	Device           int
	ConsecutiveFails int
	Quarantined      bool
	ReopenAt         vtime.Time
	Trips            uint64
	Recoveries       uint64
}

// Health returns the current breaker state of every device.
func (s *Scheduler) Health() []DeviceHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceHealth, len(s.devices))
	for i, d := range s.devices {
		h := s.health[i]
		out[i] = DeviceHealth{
			Device:           d.ID(),
			ConsecutiveFails: h.consecutive,
			Quarantined:      h.quarantined,
			ReopenAt:         h.reopenAt,
			Trips:            h.trips,
			Recoveries:       h.recoveries,
		}
	}
	return out
}

// ReportFailure records a failed GPU operation on dev (after placement:
// a transfer or kernel fault). Enough consecutive failures trip the
// device's breaker.
func (s *Scheduler) ReportFailure(dev *gpu.Device) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byID[dev.ID()]; ok {
		s.reportFailureLocked(i)
	}
}

// ReportSuccess records a successful GPU operation on dev, resetting its
// consecutive-failure count (and completing a half-open probe).
func (s *Scheduler) ReportSuccess(dev *gpu.Device) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byID[dev.ID()]; ok {
		s.reportSuccessLocked(i)
	}
}

func (s *Scheduler) reportFailureLocked(i int) {
	h := &s.health[i]
	h.consecutive++
	if h.consecutive >= s.failThreshold && !h.quarantined {
		h.quarantined = true
		h.reopenAt = s.now.Add(s.probation)
		h.trips++
		if s.sink != nil {
			s.sink.RecordBreaker(s.devices[i].ID(), true)
		}
	}
}

func (s *Scheduler) reportSuccessLocked(i int) {
	h := &s.health[i]
	h.consecutive = 0
	// A demonstrated success closes the breaker outright. Normally the
	// device was already re-admitted half-open by eligibleLocked, but a
	// success reported before any new placement (e.g. an operation that
	// outlived the quarantine) must not leave the device counted as
	// recovered yet still quarantined.
	h.quarantined = false
	if h.trips > h.recoveries {
		h.recoveries++
		if s.sink != nil {
			s.sink.RecordBreaker(s.devices[i].ID(), false)
		}
	}
}

// eligibleLocked reports whether device i may take placements now. A
// quarantined device whose probation has expired is re-admitted
// half-open: its consecutive count restarts one below the threshold, so
// a single failed probe re-trips the breaker.
func (s *Scheduler) eligibleLocked(i int) bool {
	h := &s.health[i]
	if !h.quarantined {
		return true
	}
	if s.now.Before(h.reopenAt) {
		return false
	}
	h.quarantined = false
	h.consecutive = s.failThreshold - 1
	return true
}

// Placement is a task admitted to a device: a reservation covering its
// whole memory demand. Release both frees the reservation and wakes any
// tasks blocked in Place.
type Placement struct {
	sched *Scheduler
	res   *gpu.Reservation
	once  sync.Once
}

// Device returns the device the task was placed on.
func (p *Placement) Device() *gpu.Device { return p.res.Device() }

// Reservation returns the underlying memory reservation.
func (p *Placement) Reservation() *gpu.Reservation { return p.res }

// Release frees the reservation and wakes waiting tasks. Idempotent.
func (p *Placement) Release() {
	p.once.Do(func() {
		p.res.Release()
		p.sched.mu.Lock()
		p.sched.cond.Broadcast()
		p.sched.mu.Unlock()
	})
}

// TryPlace attempts to admit a task needing memNeed bytes, without
// blocking. Among eligible devices with enough free memory it picks the
// one with the fewest outstanding jobs, breaking ties toward the most
// free memory.
func (s *Scheduler) TryPlace(memNeed int64) (*Placement, error) {
	return s.TryPlaceExcluding(memNeed, nil)
}

// TryPlaceExcluding is TryPlace restricted to devices whose ID is not in
// exclude. Callers retrying after an operation fault on one device use
// it to move the retry to the rest of the fleet.
func (s *Scheduler) TryPlaceExcluding(memNeed int64, exclude map[int]bool) (*Placement, error) {
	if memNeed <= 0 {
		return nil, fmt.Errorf("sched: invalid memory demand %d", memNeed)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.tryPlaceLocked(memNeed, exclude, trace.Context{})
	if err != nil {
		s.placeFails++
	}
	return p, err
}

// TryPlaceTraced is TryPlace recorded as a placement span: a "place"
// child of tc at virtual time at, annotated with the demand, the chosen
// device or terminal error, every breaker-quarantine skip, and — via
// the reservation's bound span — any injected reservation fault.
func (s *Scheduler) TryPlaceTraced(tc trace.Context, at vtime.Time, memNeed int64) (*Placement, error) {
	return s.TryPlaceExcludingTraced(tc, at, memNeed, nil)
}

// TryPlaceExcludingTraced is TryPlaceExcluding recorded as a placement
// span (see TryPlaceTraced).
func (s *Scheduler) TryPlaceExcludingTraced(tc trace.Context, at vtime.Time, memNeed int64, exclude map[int]bool) (*Placement, error) {
	if memNeed <= 0 {
		return nil, fmt.Errorf("sched: invalid memory demand %d", memNeed)
	}
	child := tc.Begin("sched", "place", at)
	s.mu.Lock()
	p, err := s.tryPlaceLocked(memNeed, exclude, child)
	if err != nil {
		s.placeFails++
	}
	s.mu.Unlock()
	attrs := []trace.Attr{trace.Int("demand_bytes", memNeed)}
	if err != nil {
		attrs = append(attrs, trace.Str("error", err.Error()))
	} else {
		attrs = append(attrs, trace.Int("device", int64(p.Device().ID())))
	}
	child.End(at, attrs...)
	return p, err
}

// tryPlaceLocked ranks every eligible device that can take the demand
// and attempts the reservation down the ranking: a device whose Reserve
// fails (lost a race with a direct reservation, or faulted) does not
// give up the placement while other candidates remain. The terminal
// error wraps the last reservation failure so callers can classify it.
//
// tc, when enabled, is the placement span: reservations run under its
// id (attributing reserve faults to it) and quarantine skips become
// attributes on it.
func (s *Scheduler) tryPlaceLocked(memNeed int64, exclude map[int]bool, tc trace.Context) (*Placement, error) {
	type candidate struct {
		idx  int
		jobs int
		free int64
	}
	var cands []candidate
	fitsAnywhere := false
	for i, d := range s.devices {
		if memNeed <= d.TotalMemory() {
			fitsAnywhere = true
		}
		if exclude[d.ID()] {
			continue
		}
		if !s.eligibleLocked(i) {
			if tc.Enabled() {
				tc.Annotate(trace.Str("quarantined",
					fmt.Sprintf("gpu%d reopen@%.6fs", d.ID(), float64(s.health[i].reopenAt))))
			}
			continue
		}
		free := d.FreeMemory()
		if free < memNeed {
			continue
		}
		jobs := d.Outstanding()
		if jobs >= d.Spec().MaxConcurrentKernels {
			continue
		}
		cands = append(cands, candidate{idx: i, jobs: jobs, free: free})
	}
	if !fitsAnywhere {
		return nil, ErrTooLarge
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.jobs != cb.jobs {
			return ca.jobs < cb.jobs
		}
		if ca.free != cb.free {
			return ca.free > cb.free
		}
		return ca.idx < cb.idx
	})
	var lastErr error
	for n, c := range cands {
		res, err := s.devices[c.idx].ReserveSpan(memNeed, tc.ID())
		if err == nil {
			s.placements++
			return &Placement{sched: s, res: res}, nil
		}
		lastErr = err
		faulted := errors.Is(err, gpu.ErrInjected)
		if faulted {
			s.reportFailureLocked(c.idx)
		}
		if n+1 < len(cands) && s.sink != nil {
			// Another candidate remains: this failure becomes a
			// same-placement retry, not a terminal error.
			s.sink.RecordGPURetry("place", faulted)
		}
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: %w", ErrNoDevice, lastErr)
	}
	return nil, ErrNoDevice
}

// Place admits a task needing memNeed bytes, blocking until a device can
// satisfy it. It returns ErrTooLarge immediately when no device could ever
// fit the demand.
func (s *Scheduler) Place(memNeed int64) (*Placement, error) {
	return s.placeWait(nil, memNeed)
}

// PlaceCtx is Place bounded by a context: it returns ctx.Err() as soon
// as the context is cancelled or times out while waiting for memory.
func (s *Scheduler) PlaceCtx(ctx context.Context, memNeed int64) (*Placement, error) {
	stop := context.AfterFunc(ctx, func() {
		// Taking the lock orders the broadcast after the waiter is
		// actually parked in Wait, so the wakeup cannot be missed.
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	return s.placeWait(ctx, memNeed)
}

func (s *Scheduler) placeWait(ctx context.Context, memNeed int64) (*Placement, error) {
	if memNeed <= 0 {
		return nil, fmt.Errorf("sched: invalid memory demand %d", memNeed)
	}
	waitStart := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				s.placeFails++
				return nil, err
			}
		}
		p, err := s.tryPlaceLocked(memNeed, nil, trace.Context{})
		if err == nil {
			s.observeQueueDelayLocked(p, time.Since(waitStart))
			return p, nil
		}
		if errors.Is(err, ErrTooLarge) {
			s.placeFails++
			return nil, err
		}
		s.cond.Wait()
	}
}

// PlacePartitioned splits a demand too large for one device across
// several, reserving a chunk on every eligible device that can take one
// (paper Section 2.2: large inputs are range-partitioned across GPUs and
// the partial results merged). The caller gets one placement per chunk
// and the chunk sizes; it returns ErrNoDevice if the combined free
// memory cannot cover the demand right now. On failure every chunk
// already reserved is rolled back — partial placements never leak.
func (s *Scheduler) PlacePartitioned(memNeed int64) ([]*Placement, []int64, error) {
	if memNeed <= 0 {
		return nil, nil, fmt.Errorf("sched: invalid memory demand %d", memNeed)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	remaining := memNeed
	var placements []*Placement
	var sizes []int64
	rollback := func() {
		for _, p := range placements {
			p.res.Release()
		}
	}
	var lastErr error
	for i, d := range s.devices {
		if remaining == 0 {
			break
		}
		if !s.eligibleLocked(i) {
			continue
		}
		free := d.FreeMemory()
		if free <= 0 {
			continue
		}
		chunk := remaining
		if chunk > free {
			chunk = free
		}
		res, err := d.Reserve(chunk)
		if err != nil {
			lastErr = err
			if errors.Is(err, gpu.ErrInjected) {
				s.reportFailureLocked(i)
			}
			continue
		}
		placements = append(placements, &Placement{sched: s, res: res})
		sizes = append(sizes, chunk)
		remaining -= chunk
	}
	if remaining > 0 {
		rollback()
		s.placeFails++
		if lastErr != nil {
			return nil, nil, fmt.Errorf("%w: %w", ErrNoDevice, lastErr)
		}
		return nil, nil, ErrNoDevice
	}
	s.placements += uint64(len(placements))
	return placements, sizes, nil
}

// PlaceCounts returns (successful placements, terminal placement
// failures) since the scheduler was built. Partitioned placements count
// one per reserved chunk.
func (s *Scheduler) PlaceCounts() (ok, fail uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.placements, s.placeFails
}

// observeQueueDelayLocked records how long a blocking placement waited
// before device p granted it. Caller holds s.mu.
func (s *Scheduler) observeQueueDelayLocked(p *Placement, d time.Duration) {
	id := p.res.Device().ID()
	if s.queueDelay == nil {
		s.queueDelay = make(map[int]*monitor.Hist)
	}
	h := s.queueDelay[id]
	if h == nil {
		h = &monitor.Hist{}
		s.queueDelay[id] = h
	}
	h.Observe(vtime.Duration(d.Seconds()))
}

// QueueDelay is the exported per-device queue-delay distribution.
type QueueDelay struct {
	Device     int
	Count      uint64
	SumSeconds float64
	MaxSeconds float64
	Buckets    []monitor.HistBucket
}

// QueueDelays returns the wall-clock queue-delay histograms of blocking
// placements, one per device that granted any, sorted by device id.
func (s *Scheduler) QueueDelays() []QueueDelay {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueueDelay, 0, len(s.queueDelay))
	for id, h := range s.queueDelay {
		out = append(out, QueueDelay{
			Device:     id,
			Count:      h.Count(),
			SumSeconds: h.Total().Seconds(),
			MaxSeconds: h.Max().Seconds(),
			Buckets:    h.Buckets(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// Snapshot reports the fleet state for monitoring and tests.
type Snapshot struct {
	Device      int
	Outstanding int
	FreeMemory  int64
	TotalMemory int64
}

// Snapshot returns the current per-device state.
func (s *Scheduler) Snapshot() []Snapshot {
	out := make([]Snapshot, len(s.devices))
	for i, d := range s.devices {
		out[i] = Snapshot{
			Device:      d.ID(),
			Outstanding: d.Outstanding(),
			FreeMemory:  d.FreeMemory(),
			TotalMemory: d.TotalMemory(),
		}
	}
	return out
}
