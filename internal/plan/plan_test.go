package plan

import (
	"strings"
	"testing"

	"blugpu/internal/sqlparse"
)

func build(t *testing.T, sql string) *Plan {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Build(stmt)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func buildErr(t *testing.T, sql string) error {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Build(stmt)
	if err == nil {
		t.Fatalf("Build(%q) should fail", sql)
	}
	return err
}

func TestSimpleScanProject(t *testing.T) {
	p := build(t, "SELECT a, b FROM t")
	proj, ok := p.Root.(*Project)
	if !ok {
		t.Fatalf("root = %T", p.Root)
	}
	if _, ok := proj.Input.(*Scan); !ok {
		t.Fatalf("input = %T", proj.Input)
	}
	if len(p.Output) != 2 || p.Output[0] != "a" {
		t.Errorf("output = %v", p.Output)
	}
}

func TestStarNoProject(t *testing.T) {
	p := build(t, "SELECT * FROM t LIMIT 3")
	lim := p.Root.(*Limit)
	if lim.N != 3 {
		t.Errorf("limit = %d", lim.N)
	}
	if _, ok := lim.Input.(*Scan); !ok {
		t.Errorf("star query should not project, got %T", lim.Input)
	}
}

func TestFilterPipeline(t *testing.T) {
	p := build(t, "SELECT a FROM t WHERE b > 5 AND c = 'x'")
	proj := p.Root.(*Project)
	f := proj.Input.(*Filter)
	if !strings.Contains(f.Pred.String(), "AND") {
		t.Errorf("pred = %s", f.Pred)
	}
}

func TestJoinChain(t *testing.T) {
	p := build(t, "SELECT a FROM f JOIN d1 ON k1 = r1 JOIN d2 ON k2 = r2")
	proj := p.Root.(*Project)
	j2 := proj.Input.(*Join)
	if j2.Table != "d2" || j2.LeftCol != "k2" {
		t.Errorf("outer join = %+v", j2)
	}
	j1 := j2.Left.(*Join)
	if j1.Table != "d1" {
		t.Errorf("inner join = %+v", j1)
	}
}

func TestAggregatePlan(t *testing.T) {
	p := build(t, `SELECT region, SUM(qty) AS total, COUNT(*) AS cnt, AVG(price) AS ap
		FROM s GROUP BY region`)
	proj := p.Root.(*Project)
	agg := proj.Input.(*Aggregate)
	if len(agg.Keys) != 1 || agg.Keys[0] != "region" {
		t.Fatalf("keys = %v", agg.Keys)
	}
	if len(agg.Aggs) != 3 {
		t.Fatalf("aggs = %+v", agg.Aggs)
	}
	if agg.Aggs[0].Func != AggSum || agg.Aggs[0].Out != "total" {
		t.Errorf("agg0 = %+v", agg.Aggs[0])
	}
	if agg.Aggs[1].Func != AggCount || agg.Aggs[1].Column != "" {
		t.Errorf("agg1 = %+v", agg.Aggs[1])
	}
	if agg.Aggs[2].Func != AggAvg || agg.Aggs[2].Out != "ap" {
		t.Errorf("agg2 = %+v", agg.Aggs[2])
	}
	if len(p.Output) != 4 || p.Output[1] != "total" {
		t.Errorf("output = %v", p.Output)
	}
}

func TestAggregateExprArgHoisted(t *testing.T) {
	p := build(t, "SELECT region, SUM(qty * price) AS rev FROM s GROUP BY region")
	proj := p.Root.(*Project)
	agg := proj.Input.(*Aggregate)
	d := agg.Input.(*Derive)
	if len(d.Cols) != 1 || !strings.Contains(d.Cols[0].Expr.String(), "*") {
		t.Errorf("derive = %+v", d.Cols)
	}
	if agg.Aggs[0].Column != d.Cols[0].Name {
		t.Errorf("agg should reference derived column: %+v vs %+v", agg.Aggs[0], d.Cols[0])
	}
}

func TestHavingRewrittenToFilter(t *testing.T) {
	p := build(t, "SELECT region, SUM(qty) AS total FROM s GROUP BY region HAVING SUM(qty) > 10")
	proj := p.Root.(*Project)
	f := proj.Input.(*Filter)
	if !strings.Contains(f.Pred.String(), "total") {
		t.Errorf("having should reference the aggregate output: %s", f.Pred)
	}
	if _, ok := f.Input.(*Aggregate); !ok {
		t.Errorf("having input = %T", f.Input)
	}
}

func TestOrderByAliasAndLimit(t *testing.T) {
	p := build(t, "SELECT region, SUM(qty) AS total FROM s GROUP BY region ORDER BY total DESC LIMIT 5")
	lim := p.Root.(*Limit)
	srt := lim.Input.(*Sort)
	if len(srt.Keys) != 1 || srt.Keys[0].Column != "total" || !srt.Keys[0].Desc {
		t.Errorf("sort keys = %+v", srt.Keys)
	}
}

func TestOrderByAggregateExpression(t *testing.T) {
	p := build(t, "SELECT region, SUM(qty) FROM s GROUP BY region ORDER BY SUM(qty) DESC")
	lim := p.Root.(*Sort)
	if len(lim.Keys) != 1 || !strings.HasPrefix(lim.Keys[0].Column, "_agg") {
		t.Errorf("sort keys = %+v", lim.Keys)
	}
}

func TestRankWindow(t *testing.T) {
	p := build(t, `SELECT region, SUM(qty) AS total,
		RANK() OVER (ORDER BY total DESC) AS rnk
		FROM s GROUP BY region`)
	proj := p.Root.(*Project)
	w := proj.Input.(*Window)
	if w.Out != "rnk" || len(w.OrderBy) != 1 || !w.OrderBy[0].Desc {
		t.Errorf("window = %+v", w)
	}
	if _, ok := w.Input.(*Aggregate); !ok {
		t.Errorf("window input = %T", w.Input)
	}
}

func TestValidationErrors(t *testing.T) {
	buildErr(t, "SELECT region, qty FROM s GROUP BY region")          // qty not grouped
	buildErr(t, "SELECT * FROM s GROUP BY region")                    // star with group
	buildErr(t, "SELECT SUM(qty) FROM s")                             // agg without group by
	buildErr(t, "SELECT SUM(a, b) FROM s GROUP BY a")                 // two args
	buildErr(t, "SELECT MIN(*) FROM s GROUP BY a")                    // min(*)
	buildErr(t, "SELECT a FROM s HAVING a > 1")                       // having without group
	buildErr(t, "SELECT a FROM s ORDER BY a + 1")                     // order by expression
	buildErr(t, "SELECT a, SUM(b) FROM s GROUP BY a ORDER BY MAX(c)") // agg not selected
}

func TestNegativeLiteralFolding(t *testing.T) {
	p := build(t, "SELECT a FROM t WHERE a > -5")
	f := p.Root.(*Project).Input.(*Filter)
	if !strings.Contains(f.Pred.String(), "-5") {
		t.Errorf("pred = %s", f.Pred)
	}
}

func TestInListLiteralsOnly(t *testing.T) {
	buildErr(t, "SELECT a FROM t WHERE a IN (b, c)")
	p := build(t, "SELECT a FROM t WHERE a IN (1, 2, 3)")
	if !strings.Contains(p.Root.(*Project).Input.(*Filter).Pred.String(), "IN") {
		t.Error("IN predicate missing")
	}
}

func TestPlanStringRendering(t *testing.T) {
	p := build(t, "SELECT region, SUM(qty) AS total FROM s WHERE y = 3 GROUP BY region ORDER BY total LIMIT 2")
	s := p.Root.String()
	for _, want := range []string{"scan(s)", "filter", "aggregate", "project", "sort", "limit"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan rendering %q missing %s", s, want)
		}
	}
}
