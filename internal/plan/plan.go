// Package plan lowers parsed SQL into the engine's logical plan: a
// left-deep star-join pipeline of Scan, Join, Filter, Derive, Aggregate,
// Window, Project, Sort and Limit nodes. The planner rewrites AVG into
// SUM/COUNT finalization (done by the engine), hoists aggregate arguments
// into derived columns, resolves HAVING and ORDER BY against select
// aliases, and validates that non-aggregated select items are grouping
// keys.
package plan

import (
	"fmt"
	"strconv"
	"strings"

	"blugpu/internal/columnar"
	"blugpu/internal/expr"
	"blugpu/internal/sqlparse"
)

// AggFunc enumerates the planner's aggregate functions (AVG exists here;
// the engine decomposes it into SUM and COUNT around the kernels).
type AggFunc int

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

func (f AggFunc) String() string {
	return [...]string{"SUM", "COUNT", "MIN", "MAX", "AVG"}[f]
}

// Node is one logical operator.
type Node interface{ String() string }

// Scan reads a base table. Needed, when non-nil, restricts the scan to
// the referenced columns (late materialization).
type Scan struct {
	Table  string
	Needed []string
}

func (n *Scan) String() string { return "scan(" + n.Table + ")" }

// Join is one star-join step: join the intermediate result with a base
// table on an equi-condition.
type Join struct {
	Left     Node
	Table    string
	LeftCol  string // column in the intermediate result
	RightCol string // column in the joined table
	// Needed restricts the materialized output columns (nil = all).
	Needed []string
}

func (n *Join) String() string {
	return fmt.Sprintf("join(%s, %s on %s=%s)", n.Left, n.Table, n.LeftCol, n.RightCol)
}

// Filter keeps rows where Pred is true.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

func (n *Filter) String() string { return fmt.Sprintf("filter(%s, %s)", n.Input, n.Pred) }

// DerivedCol is a named computed column.
type DerivedCol struct {
	Name string
	Expr expr.Expr
}

// Derive appends computed columns to the intermediate result.
type Derive struct {
	Input Node
	Cols  []DerivedCol
}

func (n *Derive) String() string {
	parts := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		parts[i] = c.Name + "=" + c.Expr.String()
	}
	return fmt.Sprintf("derive(%s, %s)", n.Input, strings.Join(parts, ", "))
}

// AggItem is one aggregate computed by an Aggregate node.
type AggItem struct {
	Func   AggFunc
	Column string // empty for COUNT(*)
	Out    string // output column name
}

// Aggregate groups by Keys and computes Aggs — the node the hybrid
// CPU/GPU group-by chain executes.
type Aggregate struct {
	Input Node
	Keys  []string
	Aggs  []AggItem
}

func (n *Aggregate) String() string {
	aggs := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		col := a.Column
		if col == "" {
			col = "*"
		}
		aggs[i] = fmt.Sprintf("%s(%s) as %s", a.Func, col, a.Out)
	}
	return fmt.Sprintf("aggregate(%s, keys=[%s], aggs=[%s])",
		n.Input, strings.Join(n.Keys, ","), strings.Join(aggs, ", "))
}

// SortKey orders by one column.
type SortKey struct {
	Column string
	Desc   bool
}

func (k SortKey) String() string {
	if k.Desc {
		return k.Column + " desc"
	}
	return k.Column
}

// Window computes RANK() OVER (PARTITION BY ... ORDER BY ...) into a new
// column — the OLAP construct that drives SORT in the ROLAP workload.
type Window struct {
	Input       Node
	Out         string
	PartitionBy []string
	OrderBy     []SortKey
}

func (n *Window) String() string {
	return fmt.Sprintf("window(%s, rank over part=[%s] order=[%s] as %s)",
		n.Input, joinKeys(n.PartitionBy), joinSort(n.OrderBy), n.Out)
}

// Project computes the final output columns, in order.
type Project struct {
	Input Node
	Cols  []DerivedCol
}

func (n *Project) String() string {
	parts := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		parts[i] = c.Name + "=" + c.Expr.String()
	}
	return fmt.Sprintf("project(%s, %s)", n.Input, strings.Join(parts, ", "))
}

// Sort orders the result — the hybrid CPU/GPU sort executes it.
type Sort struct {
	Input Node
	Keys  []SortKey
}

func (n *Sort) String() string { return fmt.Sprintf("sort(%s, [%s])", n.Input, joinSort(n.Keys)) }

// Limit keeps the first N rows.
type Limit struct {
	Input Node
	N     int
}

func (n *Limit) String() string { return fmt.Sprintf("limit(%s, %d)", n.Input, n.N) }

func joinKeys(ks []string) string { return strings.Join(ks, ",") }

func joinSort(ks []SortKey) string {
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = k.String()
	}
	return strings.Join(parts, ",")
}

// Plan is a lowered query.
type Plan struct {
	Root Node
	// Output names the result columns in order (empty for SELECT *).
	Output []string
}

// Build lowers a parsed statement.
func Build(stmt *sqlparse.SelectStmt) (*Plan, error) {
	b := &builder{}
	return b.build(stmt)
}

type builder struct {
	derived int
	aggN    int
	rankN   int
}

func (b *builder) build(stmt *sqlparse.SelectStmt) (*Plan, error) {
	var cur Node = &Scan{Table: stmt.From}
	for _, j := range stmt.Joins {
		cur = &Join{Left: cur, Table: j.Table, LeftCol: j.LeftCol.Name, RightCol: j.RightCol.Name}
	}
	if stmt.Where != nil {
		pred, err := LowerExpr(stmt.Where)
		if err != nil {
			return nil, err
		}
		cur = &Filter{Input: cur, Pred: pred}
	}

	// Collect aggregates from the select list (and HAVING).
	var aggCalls []*sqlparse.FuncCall
	collectAggs(&aggCalls, stmt.Having)
	for _, item := range stmt.Items {
		collectAggs(&aggCalls, item.Expr)
	}
	hasAggs := len(aggCalls) > 0
	grouped := len(stmt.GroupBy) > 0 || hasAggs

	outNames := map[string]string{} // rendering of agg call -> output column
	var windowItems []struct {
		fc  *sqlparse.FuncCall
		out string
	}

	if grouped {
		if stmt.Star {
			return nil, fmt.Errorf("plan: SELECT * cannot be combined with GROUP BY/aggregates")
		}
		keys := make([]string, len(stmt.GroupBy))
		for i, k := range stmt.GroupBy {
			keys[i] = k.Name
		}
		var derive []DerivedCol
		var aggs []AggItem
		for _, fc := range aggCalls {
			render := fc.String()
			if _, done := outNames[render]; done {
				continue
			}
			fn, err := aggFunc(fc.Name)
			if err != nil {
				return nil, err
			}
			item := AggItem{Func: fn}
			if fc.Star {
				if fn != AggCount {
					return nil, fmt.Errorf("plan: %s(*) is not valid", fc.Name)
				}
			} else {
				if len(fc.Args) != 1 {
					return nil, fmt.Errorf("plan: %s takes exactly one argument", fc.Name)
				}
				switch arg := fc.Args[0].(type) {
				case *sqlparse.Ident:
					item.Column = arg.Name
				default:
					// Hoist the expression into a derived column so the
					// evaluator chain's LCOV can load it.
					e, err := LowerExpr(fc.Args[0])
					if err != nil {
						return nil, err
					}
					name := fmt.Sprintf("_x%d", b.derived)
					b.derived++
					derive = append(derive, DerivedCol{Name: name, Expr: e})
					item.Column = name
				}
			}
			item.Out = b.aggOutName(fc, stmt.Items)
			outNames[render] = item.Out
			aggs = append(aggs, item)
		}
		if len(derive) > 0 {
			cur = &Derive{Input: cur, Cols: derive}
		}
		if len(keys) == 0 {
			return nil, fmt.Errorf("plan: aggregates without GROUP BY are not supported; add a grouping column")
		}
		cur = &Aggregate{Input: cur, Keys: keys, Aggs: aggs}

		// Validate non-aggregate select items against grouping keys, and
		// register RANK() windows.
		keySet := map[string]bool{}
		for _, k := range keys {
			keySet[k] = true
		}
		for i := range stmt.Items {
			item := &stmt.Items[i]
			if fc, ok := item.Expr.(*sqlparse.FuncCall); ok && fc.Name == "RANK" {
				out := item.Alias
				if out == "" {
					out = fmt.Sprintf("_rank%d", b.rankN)
					b.rankN++
				}
				windowItems = append(windowItems, struct {
					fc  *sqlparse.FuncCall
					out string
				}{fc, out})
				outNames[fc.String()] = out
				continue
			}
			if err := validateGroupedExpr(item.Expr, keySet, outNames); err != nil {
				return nil, err
			}
		}
	} else {
		// Ungrouped: register RANK() windows over the raw rows.
		for i := range stmt.Items {
			item := &stmt.Items[i]
			if fc, ok := item.Expr.(*sqlparse.FuncCall); ok && fc.Name == "RANK" {
				out := item.Alias
				if out == "" {
					out = fmt.Sprintf("_rank%d", b.rankN)
					b.rankN++
				}
				windowItems = append(windowItems, struct {
					fc  *sqlparse.FuncCall
					out string
				}{fc, out})
				outNames[fc.String()] = out
			}
		}
	}

	for _, w := range windowItems {
		var parts []string
		for _, p := range w.fc.Over.PartitionBy {
			parts = append(parts, p.Name)
		}
		var order []SortKey
		for _, o := range w.fc.Over.OrderBy {
			col, err := orderColumn(o.Expr, outNames)
			if err != nil {
				return nil, err
			}
			order = append(order, SortKey{Column: col, Desc: o.Desc})
		}
		cur = &Window{Input: cur, Out: w.out, PartitionBy: parts, OrderBy: order}
	}

	if stmt.Having != nil {
		if !grouped {
			return nil, fmt.Errorf("plan: HAVING requires GROUP BY")
		}
		rewritten := rewriteAggs(stmt.Having, outNames)
		pred, err := LowerExpr(rewritten)
		if err != nil {
			return nil, err
		}
		cur = &Filter{Input: cur, Pred: pred}
	}

	var output []string
	if !stmt.Star {
		cols := make([]DerivedCol, len(stmt.Items))
		for i, item := range stmt.Items {
			rewritten := rewriteAggs(item.Expr, outNames)
			e, err := LowerExpr(rewritten)
			if err != nil {
				return nil, err
			}
			name := item.Alias
			if name == "" {
				if id, ok := rewritten.(*sqlparse.Ident); ok {
					name = id.Name
				} else {
					name = fmt.Sprintf("_c%d", i)
				}
			}
			cols[i] = DerivedCol{Name: name, Expr: e}
			output = append(output, name)
		}
		cur = &Project{Input: cur, Cols: cols}
	}

	if len(stmt.OrderBy) > 0 {
		var keys []SortKey
		for _, o := range stmt.OrderBy {
			col, err := orderColumn(o.Expr, outNames)
			if err != nil {
				return nil, err
			}
			keys = append(keys, SortKey{Column: col, Desc: o.Desc})
		}
		cur = &Sort{Input: cur, Keys: keys}
	}
	if stmt.Limit >= 0 {
		cur = &Limit{Input: cur, N: stmt.Limit}
	}
	if !stmt.Star {
		// Late materialization: annotate scans and joins with the
		// columns the query actually touches.
		prune(cur)
	}
	return &Plan{Root: cur, Output: output}, nil
}

// aggOutName picks the aggregate's output column: the select alias when
// the item is exactly this aggregate, else a generated name.
func (b *builder) aggOutName(fc *sqlparse.FuncCall, items []sqlparse.SelectItem) string {
	render := fc.String()
	for _, item := range items {
		if item.Alias != "" {
			if f, ok := item.Expr.(*sqlparse.FuncCall); ok && f.String() == render {
				return item.Alias
			}
		}
	}
	name := fmt.Sprintf("_agg%d", b.aggN)
	b.aggN++
	return name
}

func aggFunc(name string) (AggFunc, error) {
	switch name {
	case "SUM":
		return AggSum, nil
	case "COUNT":
		return AggCount, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	case "AVG":
		return AggAvg, nil
	}
	return 0, fmt.Errorf("plan: unknown aggregate %q", name)
}

// collectAggs gathers aggregate calls (not RANK) from an expression tree.
func collectAggs(out *[]*sqlparse.FuncCall, e sqlparse.Expr) {
	switch x := e.(type) {
	case nil:
	case *sqlparse.FuncCall:
		if x.Name == "RANK" {
			return
		}
		*out = append(*out, x)
	case *sqlparse.Binary:
		collectAggs(out, x.Left)
		collectAggs(out, x.Right)
	case *sqlparse.Unary:
		collectAggs(out, x.Inner)
	case *sqlparse.Between:
		collectAggs(out, x.X)
		collectAggs(out, x.Lo)
		collectAggs(out, x.Hi)
	case *sqlparse.InList:
		collectAggs(out, x.X)
	case *sqlparse.IsNull:
		collectAggs(out, x.X)
	}
}

// rewriteAggs replaces aggregate calls with references to their output
// columns.
func rewriteAggs(e sqlparse.Expr, names map[string]string) sqlparse.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlparse.FuncCall:
		if out, ok := names[x.String()]; ok {
			return &sqlparse.Ident{Name: out}
		}
		return x
	case *sqlparse.Binary:
		return &sqlparse.Binary{Op: x.Op, Left: rewriteAggs(x.Left, names), Right: rewriteAggs(x.Right, names)}
	case *sqlparse.Unary:
		return &sqlparse.Unary{Op: x.Op, Inner: rewriteAggs(x.Inner, names)}
	case *sqlparse.Between:
		return &sqlparse.Between{X: rewriteAggs(x.X, names), Lo: rewriteAggs(x.Lo, names), Hi: rewriteAggs(x.Hi, names)}
	case *sqlparse.InList:
		return &sqlparse.InList{X: rewriteAggs(x.X, names), Vals: x.Vals}
	case *sqlparse.IsNull:
		return &sqlparse.IsNull{X: rewriteAggs(x.X, names), Negate: x.Negate}
	default:
		return e
	}
}

// validateGroupedExpr checks that a non-window select item only uses
// grouping keys, aggregate outputs and literals.
func validateGroupedExpr(e sqlparse.Expr, keys map[string]bool, aggs map[string]string) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlparse.Ident:
		if !keys[x.Name] {
			return fmt.Errorf("plan: column %q must appear in GROUP BY or an aggregate", x.Name)
		}
		return nil
	case *sqlparse.NumberLit, *sqlparse.StringLit:
		return nil
	case *sqlparse.FuncCall:
		if _, ok := aggs[x.String()]; ok {
			return nil
		}
		return fmt.Errorf("plan: unresolved function %s in grouped query", x.Name)
	case *sqlparse.Binary:
		if err := validateGroupedExpr(x.Left, keys, aggs); err != nil {
			return err
		}
		return validateGroupedExpr(x.Right, keys, aggs)
	case *sqlparse.Unary:
		return validateGroupedExpr(x.Inner, keys, aggs)
	default:
		return fmt.Errorf("plan: unsupported select expression %s in grouped query", e)
	}
}

// orderColumn resolves an ORDER BY expression to an output column name.
func orderColumn(e sqlparse.Expr, aggs map[string]string) (string, error) {
	switch x := e.(type) {
	case *sqlparse.Ident:
		return x.Name, nil
	case *sqlparse.FuncCall:
		if out, ok := aggs[x.String()]; ok {
			return out, nil
		}
		return "", fmt.Errorf("plan: ORDER BY aggregate %s must also appear in the select list", x.Name)
	default:
		return "", fmt.Errorf("plan: ORDER BY supports columns and aliases, not %s", e)
	}
}

// LowerExpr converts a parsed expression to an executable one. Aggregate
// calls must have been rewritten away first.
func LowerExpr(e sqlparse.Expr) (expr.Expr, error) {
	switch x := e.(type) {
	case *sqlparse.Ident:
		return &expr.Col{Name: x.Name}, nil
	case *sqlparse.NumberLit:
		if x.IsFloat {
			f, err := strconv.ParseFloat(x.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("plan: bad number %q", x.Text)
			}
			return expr.Float(f), nil
		}
		v, err := strconv.ParseInt(x.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("plan: bad number %q", x.Text)
		}
		return expr.Int(v), nil
	case *sqlparse.StringLit:
		return expr.Str(x.Val), nil
	case *sqlparse.Binary:
		l, err := LowerExpr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := LowerExpr(x.Right)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return &expr.Arith{Op: expr.Add, Left: l, Right: r}, nil
		case "-":
			return &expr.Arith{Op: expr.Sub, Left: l, Right: r}, nil
		case "*":
			return &expr.Arith{Op: expr.Mul, Left: l, Right: r}, nil
		case "/":
			return &expr.Arith{Op: expr.Div, Left: l, Right: r}, nil
		case "=":
			return &expr.Cmp{Op: expr.Eq, Left: l, Right: r}, nil
		case "<>":
			return &expr.Cmp{Op: expr.Ne, Left: l, Right: r}, nil
		case "<":
			return &expr.Cmp{Op: expr.Lt, Left: l, Right: r}, nil
		case "<=":
			return &expr.Cmp{Op: expr.Le, Left: l, Right: r}, nil
		case ">":
			return &expr.Cmp{Op: expr.Gt, Left: l, Right: r}, nil
		case ">=":
			return &expr.Cmp{Op: expr.Ge, Left: l, Right: r}, nil
		case "AND":
			return &expr.Logic{Op: expr.And, Left: l, Right: r}, nil
		case "OR":
			return &expr.Logic{Op: expr.Or, Left: l, Right: r}, nil
		}
		return nil, fmt.Errorf("plan: unknown operator %q", x.Op)
	case *sqlparse.Unary:
		inner, err := LowerExpr(x.Inner)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return &expr.Not{Inner: inner}, nil
		case "-":
			if lit, ok := inner.(*expr.Lit); ok {
				v := lit.Val
				switch v.Type {
				case columnar.Int64:
					return expr.Int(-v.I), nil
				case columnar.Float64:
					return expr.Float(-v.F), nil
				}
			}
			return &expr.Arith{Op: expr.Sub, Left: expr.Int(0), Right: inner}, nil
		}
		return nil, fmt.Errorf("plan: unknown unary operator %q", x.Op)
	case *sqlparse.Between:
		xx, err := LowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := LowerExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := LowerExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		return &expr.Between{X: xx, Lo: lo, Hi: hi}, nil
	case *sqlparse.InList:
		xx, err := LowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		vals := make([]columnar.Value, len(x.Vals))
		for i, v := range x.Vals {
			lowered, err := LowerExpr(v)
			if err != nil {
				return nil, err
			}
			lit, ok := lowered.(*expr.Lit)
			if !ok {
				return nil, fmt.Errorf("plan: IN list values must be literals")
			}
			vals[i] = lit.Val
		}
		return &expr.In{X: xx, Vals: vals}, nil
	case *sqlparse.IsNull:
		xx, err := LowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{X: xx, Negate: x.Negate}, nil
	case *sqlparse.FuncCall:
		return nil, fmt.Errorf("plan: aggregate %s outside GROUP BY context", x.Name)
	}
	return nil, fmt.Errorf("plan: unsupported expression %T", e)
}
