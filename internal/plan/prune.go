package plan

import (
	"sort"

	"blugpu/internal/expr"
)

// prune annotates Scan and Join nodes with the set of columns actually
// referenced above them — BLU-style late materialization, so joins only
// gather the columns the query touches.
func prune(root Node) {
	visit(root, map[string]bool{})
}

// visit walks down the tree accumulating needed columns.
func visit(n Node, needed map[string]bool) {
	switch node := n.(type) {
	case *Scan:
		node.Needed = sortedKeys(needed)
	case *Join:
		needed[node.LeftCol] = true
		needed[node.RightCol] = true
		node.Needed = sortedKeys(needed)
		visit(node.Left, needed)
	case *Filter:
		collectExprCols(node.Pred, needed)
		visit(node.Input, needed)
	case *Derive:
		for _, c := range node.Cols {
			// The derived name itself is produced, not consumed below.
			delete(needed, c.Name)
			collectExprCols(c.Expr, needed)
		}
		visit(node.Input, needed)
	case *Aggregate:
		// Aggregation is a hard boundary: below it, only keys and
		// aggregate inputs matter.
		below := map[string]bool{}
		for _, k := range node.Keys {
			below[k] = true
		}
		for _, a := range node.Aggs {
			if a.Column != "" {
				below[a.Column] = true
			}
		}
		visit(node.Input, below)
	case *Window:
		for _, p := range node.PartitionBy {
			needed[p] = true
		}
		for _, o := range node.OrderBy {
			needed[o.Column] = true
		}
		delete(needed, node.Out)
		visit(node.Input, needed)
	case *Project:
		below := map[string]bool{}
		for _, c := range node.Cols {
			collectExprCols(c.Expr, below)
		}
		// Anything the caller needs above Project resolves to projected
		// names, which the projection computes from `below`.
		visit(node.Input, below)
	case *Sort:
		for _, k := range node.Keys {
			needed[k.Column] = true
		}
		visit(node.Input, needed)
	case *Limit:
		visit(node.Input, needed)
	}
}

// collectExprCols adds every column referenced by e to set.
func collectExprCols(e expr.Expr, set map[string]bool) {
	switch x := e.(type) {
	case nil:
	case *expr.Col:
		set[x.Name] = true
	case *expr.Arith:
		collectExprCols(x.Left, set)
		collectExprCols(x.Right, set)
	case *expr.Cmp:
		collectExprCols(x.Left, set)
		collectExprCols(x.Right, set)
	case *expr.Logic:
		collectExprCols(x.Left, set)
		collectExprCols(x.Right, set)
	case *expr.Not:
		collectExprCols(x.Inner, set)
	case *expr.Between:
		collectExprCols(x.X, set)
		collectExprCols(x.Lo, set)
		collectExprCols(x.Hi, set)
	case *expr.In:
		collectExprCols(x.X, set)
	case *expr.IsNull:
		collectExprCols(x.X, set)
	}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
