// Package expr implements scalar expressions and predicates evaluated
// over columnar tables — the engine's expression service and the input
// language of its predicate evaluators.
//
// Evaluation is row-at-a-time for clarity; the engine charges predicate
// work to the cost model by row count, so functional evaluation speed does
// not affect modeled results.
package expr

import (
	"fmt"
	"strings"

	"blugpu/internal/columnar"
	"blugpu/internal/parallel"
)

// Expr is a scalar expression over one table's row.
type Expr interface {
	// Eval computes the expression for row i of tbl.
	Eval(tbl *columnar.Table, i int) (columnar.Value, error)
	// TypeOf resolves the result type against tbl's schema.
	TypeOf(tbl *columnar.Table) (columnar.Type, error)
	// String renders SQL-ish text.
	String() string
}

// --- Column reference ---

// Col references a column by name.
type Col struct{ Name string }

// Eval implements Expr.
func (c *Col) Eval(tbl *columnar.Table, i int) (columnar.Value, error) {
	col := tbl.Column(c.Name)
	if col == nil {
		return columnar.Value{}, fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return col.Value(i), nil
}

// TypeOf implements Expr.
func (c *Col) TypeOf(tbl *columnar.Table) (columnar.Type, error) {
	col := tbl.Column(c.Name)
	if col == nil {
		return 0, fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return col.Type(), nil
}

func (c *Col) String() string { return c.Name }

// --- Literal ---

// Lit is a constant.
type Lit struct{ Val columnar.Value }

// Int returns an integer literal.
func Int(v int64) *Lit { return &Lit{columnar.IntValue(v)} }

// Float returns a float literal.
func Float(v float64) *Lit { return &Lit{columnar.FloatValue(v)} }

// Str returns a string literal.
func Str(v string) *Lit { return &Lit{columnar.StringValue(v)} }

// Eval implements Expr.
func (l *Lit) Eval(*columnar.Table, int) (columnar.Value, error) { return l.Val, nil }

// TypeOf implements Expr.
func (l *Lit) TypeOf(*columnar.Table) (columnar.Type, error) { return l.Val.Type, nil }

func (l *Lit) String() string {
	if l.Val.Type == columnar.String && !l.Val.Null {
		return "'" + l.Val.S + "'"
	}
	return l.Val.String()
}

// --- Arithmetic ---

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	return [...]string{"+", "-", "*", "/"}[op]
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op          ArithOp
	Left, Right Expr
}

// Eval implements Expr.
func (a *Arith) Eval(tbl *columnar.Table, i int) (columnar.Value, error) {
	l, err := a.Left.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	r, err := a.Right.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	t, err := numericResult(l.Type, r.Type)
	if err != nil {
		return columnar.Value{}, fmt.Errorf("expr: %s: %w", a, err)
	}
	if l.Null || r.Null {
		return columnar.NullValue(t), nil
	}
	if t == columnar.Float64 {
		lf, rf := asFloat(l), asFloat(r)
		switch a.Op {
		case Add:
			return columnar.FloatValue(lf + rf), nil
		case Sub:
			return columnar.FloatValue(lf - rf), nil
		case Mul:
			return columnar.FloatValue(lf * rf), nil
		case Div:
			if rf == 0 {
				return columnar.NullValue(t), nil
			}
			return columnar.FloatValue(lf / rf), nil
		}
	}
	switch a.Op {
	case Add:
		return columnar.IntValue(l.I + r.I), nil
	case Sub:
		return columnar.IntValue(l.I - r.I), nil
	case Mul:
		return columnar.IntValue(l.I * r.I), nil
	case Div:
		if r.I == 0 {
			return columnar.NullValue(t), nil
		}
		return columnar.IntValue(l.I / r.I), nil
	}
	return columnar.Value{}, fmt.Errorf("expr: unknown arith op %d", a.Op)
}

// TypeOf implements Expr.
func (a *Arith) TypeOf(tbl *columnar.Table) (columnar.Type, error) {
	lt, err := a.Left.TypeOf(tbl)
	if err != nil {
		return 0, err
	}
	rt, err := a.Right.TypeOf(tbl)
	if err != nil {
		return 0, err
	}
	return numericResult(lt, rt)
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.Left, a.Op, a.Right)
}

// --- Comparison ---

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Cmp is a binary comparison; its result is a boolean encoded as an Int64
// Value (1/0) with NULL for unknown (SQL three-valued logic).
type Cmp struct {
	Op          CmpOp
	Left, Right Expr
}

// Eval implements Expr.
func (c *Cmp) Eval(tbl *columnar.Table, i int) (columnar.Value, error) {
	l, err := c.Left.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	r, err := c.Right.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	if l.Null || r.Null {
		return columnar.NullValue(columnar.Int64), nil
	}
	l, r, err = coerce(l, r)
	if err != nil {
		return columnar.Value{}, fmt.Errorf("expr: %s: %w", c, err)
	}
	cv := l.Compare(r)
	var ok bool
	switch c.Op {
	case Eq:
		ok = cv == 0
	case Ne:
		ok = cv != 0
	case Lt:
		ok = cv < 0
	case Le:
		ok = cv <= 0
	case Gt:
		ok = cv > 0
	case Ge:
		ok = cv >= 0
	}
	return boolValue(ok), nil
}

// TypeOf implements Expr.
func (c *Cmp) TypeOf(tbl *columnar.Table) (columnar.Type, error) {
	if _, err := c.Left.TypeOf(tbl); err != nil {
		return 0, err
	}
	if _, err := c.Right.TypeOf(tbl); err != nil {
		return 0, err
	}
	return columnar.Int64, nil
}

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.Left, c.Op, c.Right)
}

// --- Logical ---

// LogicOp enumerates logical connectives.
type LogicOp int

// Logical connectives.
const (
	And LogicOp = iota
	Or
)

func (op LogicOp) String() string { return [...]string{"AND", "OR"}[op] }

// Logic combines boolean expressions with SQL three-valued logic.
type Logic struct {
	Op          LogicOp
	Left, Right Expr
}

// Eval implements Expr.
func (lg *Logic) Eval(tbl *columnar.Table, i int) (columnar.Value, error) {
	l, err := lg.Left.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	r, err := lg.Right.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	lt, rt := truth(l), truth(r)
	switch lg.Op {
	case And:
		switch {
		case lt == tFalse || rt == tFalse:
			return boolValue(false), nil
		case lt == tTrue && rt == tTrue:
			return boolValue(true), nil
		default:
			return columnar.NullValue(columnar.Int64), nil
		}
	case Or:
		switch {
		case lt == tTrue || rt == tTrue:
			return boolValue(true), nil
		case lt == tFalse && rt == tFalse:
			return boolValue(false), nil
		default:
			return columnar.NullValue(columnar.Int64), nil
		}
	}
	return columnar.Value{}, fmt.Errorf("expr: unknown logic op %d", lg.Op)
}

// TypeOf implements Expr.
func (lg *Logic) TypeOf(tbl *columnar.Table) (columnar.Type, error) {
	if _, err := lg.Left.TypeOf(tbl); err != nil {
		return 0, err
	}
	if _, err := lg.Right.TypeOf(tbl); err != nil {
		return 0, err
	}
	return columnar.Int64, nil
}

func (lg *Logic) String() string {
	return fmt.Sprintf("(%s %s %s)", lg.Left, lg.Op, lg.Right)
}

// Not negates a boolean expression (NULL stays NULL).
type Not struct{ Inner Expr }

// Eval implements Expr.
func (n *Not) Eval(tbl *columnar.Table, i int) (columnar.Value, error) {
	v, err := n.Inner.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	switch truth(v) {
	case tTrue:
		return boolValue(false), nil
	case tFalse:
		return boolValue(true), nil
	default:
		return columnar.NullValue(columnar.Int64), nil
	}
}

// TypeOf implements Expr.
func (n *Not) TypeOf(tbl *columnar.Table) (columnar.Type, error) {
	if _, err := n.Inner.TypeOf(tbl); err != nil {
		return 0, err
	}
	return columnar.Int64, nil
}

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.Inner) }

// --- Between, In, IsNull ---

// Between is `x BETWEEN lo AND hi` (inclusive).
type Between struct{ X, Lo, Hi Expr }

// Eval implements Expr.
func (b *Between) Eval(tbl *columnar.Table, i int) (columnar.Value, error) {
	ge := &Cmp{Op: Ge, Left: b.X, Right: b.Lo}
	le := &Cmp{Op: Le, Left: b.X, Right: b.Hi}
	return (&Logic{Op: And, Left: ge, Right: le}).Eval(tbl, i)
}

// TypeOf implements Expr.
func (b *Between) TypeOf(tbl *columnar.Table) (columnar.Type, error) {
	for _, e := range []Expr{b.X, b.Lo, b.Hi} {
		if _, err := e.TypeOf(tbl); err != nil {
			return 0, err
		}
	}
	return columnar.Int64, nil
}

func (b *Between) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.X, b.Lo, b.Hi)
}

// In is `x IN (v1, v2, ...)` over literal values.
type In struct {
	X    Expr
	Vals []columnar.Value
}

// Eval implements Expr.
func (in *In) Eval(tbl *columnar.Table, i int) (columnar.Value, error) {
	v, err := in.X.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	if v.Null {
		return columnar.NullValue(columnar.Int64), nil
	}
	for _, c := range in.Vals {
		cv, vv, err := coerce(c, v)
		if err != nil {
			continue
		}
		if vv.Equal(cv) {
			return boolValue(true), nil
		}
	}
	return boolValue(false), nil
}

// TypeOf implements Expr.
func (in *In) TypeOf(tbl *columnar.Table) (columnar.Type, error) {
	if _, err := in.X.TypeOf(tbl); err != nil {
		return 0, err
	}
	return columnar.Int64, nil
}

func (in *In) String() string {
	parts := make([]string, len(in.Vals))
	for i, v := range in.Vals {
		if v.Type == columnar.String {
			parts[i] = "'" + v.S + "'"
		} else {
			parts[i] = v.String()
		}
	}
	return fmt.Sprintf("(%s IN (%s))", in.X, strings.Join(parts, ", "))
}

// IsNull is `x IS [NOT] NULL`.
type IsNull struct {
	X      Expr
	Negate bool
}

// Eval implements Expr.
func (n *IsNull) Eval(tbl *columnar.Table, i int) (columnar.Value, error) {
	v, err := n.X.Eval(tbl, i)
	if err != nil {
		return columnar.Value{}, err
	}
	return boolValue(v.Null != n.Negate), nil
}

// TypeOf implements Expr.
func (n *IsNull) TypeOf(tbl *columnar.Table) (columnar.Type, error) {
	if _, err := n.X.TypeOf(tbl); err != nil {
		return 0, err
	}
	return columnar.Int64, nil
}

func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.X)
	}
	return fmt.Sprintf("(%s IS NULL)", n.X)
}

// --- helpers ---

type tri int

const (
	tFalse tri = iota
	tTrue
	tNull
)

func truth(v columnar.Value) tri {
	if v.Null {
		return tNull
	}
	switch v.Type {
	case columnar.Int64:
		if v.I != 0 {
			return tTrue
		}
	case columnar.Float64:
		if v.F != 0 {
			return tTrue
		}
	}
	return tFalse
}

func boolValue(b bool) columnar.Value {
	if b {
		return columnar.IntValue(1)
	}
	return columnar.IntValue(0)
}

func asFloat(v columnar.Value) float64 {
	if v.Type == columnar.Float64 {
		return v.F
	}
	return float64(v.I)
}

func numericResult(l, r columnar.Type) (columnar.Type, error) {
	if l == columnar.String || r == columnar.String {
		return 0, fmt.Errorf("arithmetic on string operand")
	}
	if l == columnar.Float64 || r == columnar.Float64 {
		return columnar.Float64, nil
	}
	return columnar.Int64, nil
}

// coerce makes two values comparable, widening int to float when mixed.
func coerce(l, r columnar.Value) (columnar.Value, columnar.Value, error) {
	if l.Type == r.Type {
		return l, r, nil
	}
	if l.Type == columnar.String || r.Type == columnar.String {
		return l, r, fmt.Errorf("cannot compare %v with %v", l.Type, r.Type)
	}
	return columnar.FloatValue(asFloat(l)), columnar.FloatValue(asFloat(r)), nil
}

// EvalPredicate evaluates pred for every row of tbl and returns the
// selection bitmap (rows where the predicate is TRUE; FALSE and NULL are
// excluded, per SQL WHERE semantics). It is the sequential reference for
// EvalPredicateDegree.
func EvalPredicate(tbl *columnar.Table, pred Expr) (*columnar.Bitmap, error) {
	if _, err := pred.TypeOf(tbl); err != nil {
		return nil, err
	}
	bm := columnar.NewBitmap(tbl.Rows())
	for i := 0; i < tbl.Rows(); i++ {
		v, err := pred.Eval(tbl, i)
		if err != nil {
			return nil, err
		}
		if truth(v) == tTrue {
			bm.Set(i)
		}
	}
	return bm, nil
}

// predicateGrain is the minimum rows per worker for parallel predicate
// scans; row-at-a-time Eval is slow enough that small chunks still pay.
const predicateGrain = 512

// EvalPredicateDegree is the parallel predicate scan: disjoint 64-aligned
// row ranges are evaluated by the worker pool, each worker setting bits
// only in its own words of the shared bitmap. Expressions are read-only
// over the table, so the result is identical to EvalPredicate at any
// degree.
func EvalPredicateDegree(tbl *columnar.Table, pred Expr, degree int) (*columnar.Bitmap, error) {
	if _, err := pred.TypeOf(tbl); err != nil {
		return nil, err
	}
	bm := columnar.NewBitmap(tbl.Rows())
	err := parallel.ForErr(tbl.Rows(), predicateGrain, degree, func(lo, hi, _ int) error {
		for i := lo; i < hi; i++ {
			v, err := pred.Eval(tbl, i)
			if err != nil {
				return err
			}
			if truth(v) == tTrue {
				bm.Set(i)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return bm, nil
}

// Columns returns the distinct column names e references, in first-
// reference order. Planners use it to compute the exact column set an
// expression needs (late materialization).
func Columns(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Col:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *Arith:
			walk(x.Left)
			walk(x.Right)
		case *Cmp:
			walk(x.Left)
			walk(x.Right)
		case *Logic:
			walk(x.Left)
			walk(x.Right)
		case *Not:
			walk(x.Inner)
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *In:
			walk(x.X)
		case *IsNull:
			walk(x.X)
		}
	}
	walk(e)
	return out
}
