package expr

import (
	"strings"
	"testing"

	"blugpu/internal/columnar"
)

func testTable(t *testing.T) *columnar.Table {
	t.Helper()
	id := columnar.NewInt64Builder("id")
	qty := columnar.NewInt64Builder("qty")
	price := columnar.NewFloat64Builder("price")
	state := columnar.NewStringBuilder("state")
	rows := []struct {
		id, qty int64
		price   float64
		state   string
		nullQty bool
	}{
		{1, 10, 1.5, "NY", false},
		{2, 20, 2.5, "CA", false},
		{3, 0, 0.5, "TX", true},
		{4, 40, 4.0, "NY", false},
	}
	for _, r := range rows {
		id.Append(r.id)
		if r.nullQty {
			qty.AppendNull()
		} else {
			qty.Append(r.qty)
		}
		price.Append(r.price)
		state.Append(r.state)
	}
	return columnar.MustNewTable("t", id.Build(), qty.Build(), price.Build(), state.Build())
}

func TestColAndLit(t *testing.T) {
	tbl := testTable(t)
	v, err := (&Col{"id"}).Eval(tbl, 1)
	if err != nil || v.I != 2 {
		t.Fatalf("col eval = %v, %v", v, err)
	}
	if _, err := (&Col{"missing"}).Eval(tbl, 0); err == nil {
		t.Error("unknown column should error")
	}
	if v, _ := Str("x").Eval(tbl, 0); v.S != "x" {
		t.Error("string literal broken")
	}
	if Int(5).String() != "5" || Str("a").String() != "'a'" {
		t.Error("literal String() broken")
	}
}

func TestArith(t *testing.T) {
	tbl := testTable(t)
	// qty * price mixes int and float.
	e := &Arith{Op: Mul, Left: &Col{"qty"}, Right: &Col{"price"}}
	tt, err := e.TypeOf(tbl)
	if err != nil || tt != columnar.Float64 {
		t.Fatalf("TypeOf = %v, %v", tt, err)
	}
	v, err := e.Eval(tbl, 1)
	if err != nil || v.F != 50 {
		t.Fatalf("20*2.5 = %v, %v", v, err)
	}
	// NULL propagates.
	v, _ = e.Eval(tbl, 2)
	if !v.Null {
		t.Error("NULL operand should give NULL result")
	}
	// Int division and division by zero.
	if v, _ := (&Arith{Op: Div, Left: Int(7), Right: Int(2)}).Eval(tbl, 0); v.I != 3 {
		t.Errorf("7/2 = %v, want 3 (int division)", v)
	}
	if v, _ := (&Arith{Op: Div, Left: Int(7), Right: Int(0)}).Eval(tbl, 0); !v.Null {
		t.Error("division by zero should be NULL")
	}
	// Arithmetic on strings is an error.
	bad := &Arith{Op: Add, Left: &Col{"state"}, Right: Int(1)}
	if _, err := bad.Eval(tbl, 0); err == nil {
		t.Error("string arithmetic should error")
	}
}

func TestCmp(t *testing.T) {
	tbl := testTable(t)
	gt := &Cmp{Op: Gt, Left: &Col{"qty"}, Right: Int(15)}
	if v, _ := gt.Eval(tbl, 0); v.I != 0 {
		t.Error("10 > 15 should be false")
	}
	if v, _ := gt.Eval(tbl, 1); v.I != 1 {
		t.Error("20 > 15 should be true")
	}
	if v, _ := gt.Eval(tbl, 2); !v.Null {
		t.Error("NULL > 15 should be NULL")
	}
	// Mixed int/float comparison coerces.
	mix := &Cmp{Op: Eq, Left: &Col{"price"}, Right: Int(4)}
	if v, _ := mix.Eval(tbl, 3); v.I != 1 {
		t.Error("4.0 = 4 should be true after coercion")
	}
	// String comparison.
	se := &Cmp{Op: Eq, Left: &Col{"state"}, Right: Str("NY")}
	if v, _ := se.Eval(tbl, 0); v.I != 1 {
		t.Error("state = 'NY' should match row 0")
	}
	// Cross string/int comparison errors.
	bad := &Cmp{Op: Eq, Left: &Col{"state"}, Right: Int(1)}
	if _, err := bad.Eval(tbl, 0); err == nil {
		t.Error("string/int comparison should error")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tbl := testTable(t)
	null := &Cmp{Op: Gt, Left: &Col{"qty"}, Right: Int(0)} // NULL on row 2
	truev := &Cmp{Op: Eq, Left: Int(1), Right: Int(1)}
	falsev := &Cmp{Op: Eq, Left: Int(1), Right: Int(2)}

	// FALSE AND NULL = FALSE
	if v, _ := (&Logic{Op: And, Left: falsev, Right: null}).Eval(tbl, 2); v.Null || v.I != 0 {
		t.Error("FALSE AND NULL should be FALSE")
	}
	// TRUE AND NULL = NULL
	if v, _ := (&Logic{Op: And, Left: truev, Right: null}).Eval(tbl, 2); !v.Null {
		t.Error("TRUE AND NULL should be NULL")
	}
	// TRUE OR NULL = TRUE
	if v, _ := (&Logic{Op: Or, Left: truev, Right: null}).Eval(tbl, 2); v.Null || v.I != 1 {
		t.Error("TRUE OR NULL should be TRUE")
	}
	// NOT NULL = NULL
	if v, _ := (&Not{null}).Eval(tbl, 2); !v.Null {
		t.Error("NOT NULL should be NULL")
	}
	if v, _ := (&Not{truev}).Eval(tbl, 0); v.I != 0 {
		t.Error("NOT TRUE should be FALSE")
	}
}

func TestBetweenInIsNull(t *testing.T) {
	tbl := testTable(t)
	b := &Between{X: &Col{"qty"}, Lo: Int(10), Hi: Int(20)}
	if v, _ := b.Eval(tbl, 0); v.I != 1 {
		t.Error("10 BETWEEN 10 AND 20 should be true")
	}
	if v, _ := b.Eval(tbl, 3); v.I != 0 {
		t.Error("40 BETWEEN 10 AND 20 should be false")
	}
	in := &In{X: &Col{"state"}, Vals: []columnar.Value{columnar.StringValue("CA"), columnar.StringValue("TX")}}
	if v, _ := in.Eval(tbl, 1); v.I != 1 {
		t.Error("'CA' IN ('CA','TX') should be true")
	}
	if v, _ := in.Eval(tbl, 0); v.I != 0 {
		t.Error("'NY' IN ('CA','TX') should be false")
	}
	isn := &IsNull{X: &Col{"qty"}}
	if v, _ := isn.Eval(tbl, 2); v.I != 1 {
		t.Error("NULL IS NULL should be true")
	}
	notn := &IsNull{X: &Col{"qty"}, Negate: true}
	if v, _ := notn.Eval(tbl, 0); v.I != 1 {
		t.Error("10 IS NOT NULL should be true")
	}
}

func TestEvalPredicate(t *testing.T) {
	tbl := testTable(t)
	// WHERE state = 'NY' AND qty > 5  -> rows 0, 3
	pred := &Logic{
		Op:    And,
		Left:  &Cmp{Op: Eq, Left: &Col{"state"}, Right: Str("NY")},
		Right: &Cmp{Op: Gt, Left: &Col{"qty"}, Right: Int(5)},
	}
	bm, err := EvalPredicate(tbl, pred)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Count() != 2 || !bm.Get(0) || !bm.Get(3) {
		t.Errorf("selection = %v", bm.Indices())
	}
	// NULL rows are excluded (row 2 has NULL qty).
	all := &Cmp{Op: Ge, Left: &Col{"qty"}, Right: Int(0)}
	bm, _ = EvalPredicate(tbl, all)
	if bm.Get(2) {
		t.Error("NULL predicate result must exclude the row")
	}
	// Type errors surface.
	if _, err := EvalPredicate(tbl, &Col{"missing"}); err == nil {
		t.Error("unknown column in predicate should error")
	}
}

func TestStringRendering(t *testing.T) {
	e := &Logic{
		Op:    And,
		Left:  &Cmp{Op: Le, Left: &Col{"a"}, Right: Int(3)},
		Right: &Between{X: &Col{"b"}, Lo: Int(1), Hi: Int(2)},
	}
	s := e.String()
	for _, want := range []string{"a <= 3", "BETWEEN", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
	in := &In{X: &Col{"s"}, Vals: []columnar.Value{columnar.StringValue("x"), columnar.IntValue(3)}}
	if got := in.String(); !strings.Contains(got, "'x'") || !strings.Contains(got, "3") {
		t.Errorf("In rendering = %q", got)
	}
}
