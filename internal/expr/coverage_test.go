package expr

import (
	"testing"

	"blugpu/internal/columnar"
)

func TestFloatLiteralAndTypeOf(t *testing.T) {
	tbl := testTable(t)
	f := Float(2.5)
	if v, _ := f.Eval(tbl, 0); v.F != 2.5 {
		t.Error("Float literal broken")
	}
	if tt, _ := f.TypeOf(tbl); tt != columnar.Float64 {
		t.Error("Float TypeOf broken")
	}
	// Arith TypeOf error paths.
	bad := &Arith{Op: Add, Left: &Col{"missing"}, Right: Int(1)}
	if _, err := bad.TypeOf(tbl); err == nil {
		t.Error("unknown column TypeOf should error")
	}
	bad2 := &Arith{Op: Add, Left: Int(1), Right: &Col{"missing"}}
	if _, err := bad2.TypeOf(tbl); err == nil {
		t.Error("right unknown column TypeOf should error")
	}
	strArith := &Arith{Op: Add, Left: &Col{"state"}, Right: &Col{"state"}}
	if _, err := strArith.TypeOf(tbl); err == nil {
		t.Error("string arithmetic TypeOf should error")
	}
}

func TestTypeOfPropagation(t *testing.T) {
	tbl := testTable(t)
	exprs := []Expr{
		&Cmp{Op: Eq, Left: &Col{"missing"}, Right: Int(1)},
		&Cmp{Op: Eq, Left: Int(1), Right: &Col{"missing"}},
		&Logic{Op: And, Left: &Col{"missing"}, Right: Int(1)},
		&Logic{Op: And, Left: Int(1), Right: &Col{"missing"}},
		&Not{&Col{"missing"}},
		&Between{X: &Col{"missing"}, Lo: Int(1), Hi: Int(2)},
		&Between{X: Int(1), Lo: &Col{"missing"}, Hi: Int(2)},
		&In{X: &Col{"missing"}},
		&IsNull{X: &Col{"missing"}},
	}
	for i, e := range exprs {
		if _, err := e.TypeOf(tbl); err == nil {
			t.Errorf("expr %d: TypeOf should propagate the unknown column", i)
		}
	}
	// Happy TypeOf paths all resolve to Int64 (boolean).
	good := []Expr{
		&Logic{Op: Or, Left: Int(1), Right: Int(0)},
		&Not{Int(1)},
		&Between{X: Int(1), Lo: Int(0), Hi: Int(2)},
		&In{X: Int(1), Vals: []columnar.Value{columnar.IntValue(1)}},
		&IsNull{X: Int(1)},
	}
	for i, e := range good {
		tt, err := e.TypeOf(tbl)
		if err != nil || tt != columnar.Int64 {
			t.Errorf("expr %d: TypeOf = %v, %v", i, tt, err)
		}
	}
}

func TestEvalErrorPropagation(t *testing.T) {
	tbl := testTable(t)
	exprs := []Expr{
		&Arith{Op: Add, Left: &Col{"missing"}, Right: Int(1)},
		&Arith{Op: Add, Left: Int(1), Right: &Col{"missing"}},
		&Cmp{Op: Eq, Left: &Col{"missing"}, Right: Int(1)},
		&Cmp{Op: Eq, Left: Int(1), Right: &Col{"missing"}},
		&Logic{Op: And, Left: &Col{"missing"}, Right: Int(1)},
		&Logic{Op: And, Left: Int(1), Right: &Col{"missing"}},
		&Not{&Col{"missing"}},
		&In{X: &Col{"missing"}},
		&IsNull{X: &Col{"missing"}},
	}
	for i, e := range exprs {
		if _, err := e.Eval(tbl, 0); err == nil {
			t.Errorf("expr %d: Eval should propagate the unknown column", i)
		}
	}
}

func TestFloatArithmeticBranches(t *testing.T) {
	tbl := testTable(t)
	// Float +, -, /, and division by zero.
	if v, _ := (&Arith{Op: Add, Left: Float(1.5), Right: Float(2)}).Eval(tbl, 0); v.F != 3.5 {
		t.Error("float add")
	}
	if v, _ := (&Arith{Op: Sub, Left: Float(1.5), Right: Int(1)}).Eval(tbl, 0); v.F != 0.5 {
		t.Error("mixed sub")
	}
	if v, _ := (&Arith{Op: Div, Left: Float(5), Right: Float(2)}).Eval(tbl, 0); v.F != 2.5 {
		t.Error("float div")
	}
	if v, _ := (&Arith{Op: Div, Left: Float(5), Right: Float(0)}).Eval(tbl, 0); !v.Null {
		t.Error("float div by zero should be NULL")
	}
	// Int sub/mul.
	if v, _ := (&Arith{Op: Sub, Left: Int(7), Right: Int(3)}).Eval(tbl, 0); v.I != 4 {
		t.Error("int sub")
	}
	if v, _ := (&Arith{Op: Mul, Left: Int(7), Right: Int(3)}).Eval(tbl, 0); v.I != 21 {
		t.Error("int mul")
	}
}

func TestCmpOperatorsComplete(t *testing.T) {
	tbl := testTable(t)
	cases := []struct {
		op   CmpOp
		a, b int64
		want int64
	}{
		{Ne, 1, 2, 1}, {Ne, 2, 2, 0},
		{Lt, 1, 2, 1}, {Lt, 2, 2, 0},
		{Le, 2, 2, 1}, {Le, 3, 2, 0},
		{Ge, 2, 2, 1}, {Ge, 1, 2, 0},
	}
	for _, c := range cases {
		v, err := (&Cmp{Op: c.op, Left: Int(c.a), Right: Int(c.b)}).Eval(tbl, 0)
		if err != nil || v.I != c.want {
			t.Errorf("%d %v %d = %v, want %d", c.a, c.op, c.b, v, c.want)
		}
	}
}

func TestTruthOfFloats(t *testing.T) {
	tbl := testTable(t)
	// Float truthiness through Logic.
	v, _ := (&Logic{Op: And, Left: Float(1.5), Right: Float(2)}).Eval(tbl, 0)
	if v.I != 1 {
		t.Error("non-zero floats should be true")
	}
	v, _ = (&Logic{Op: Or, Left: Float(0), Right: Float(0)}).Eval(tbl, 0)
	if v.I != 0 {
		t.Error("zero floats should be false")
	}
}

func TestInWithNullAndMixedTypes(t *testing.T) {
	tbl := testTable(t)
	// NULL input stays NULL.
	in := &In{X: &Col{"qty"}, Vals: []columnar.Value{columnar.IntValue(0)}}
	if v, _ := in.Eval(tbl, 2); !v.Null {
		t.Error("NULL IN (...) should be NULL")
	}
	// Mixed numeric coercion inside IN.
	mixed := &In{X: &Col{"price"}, Vals: []columnar.Value{columnar.IntValue(4)}}
	if v, _ := mixed.Eval(tbl, 3); v.I != 1 {
		t.Error("4.0 IN (4) should coerce and match")
	}
	// Incomparable values are skipped, not errors.
	weird := &In{X: &Col{"qty"}, Vals: []columnar.Value{columnar.StringValue("x"), columnar.IntValue(10)}}
	if v, _ := weird.Eval(tbl, 0); v.I != 1 {
		t.Error("comparable value later in the list should still match")
	}
}

func TestStringersComplete(t *testing.T) {
	exprs := []Expr{
		&Logic{Op: Or, Left: Int(1), Right: Int(0)},
		&Not{Int(1)},
		&IsNull{X: &Col{"a"}},
		&IsNull{X: &Col{"a"}, Negate: true},
		&Arith{Op: Div, Left: &Col{"a"}, Right: Int(2)},
		Float(1.5),
	}
	for _, e := range exprs {
		if e.String() == "" {
			t.Errorf("%T renders empty", e)
		}
	}
	if (&Cmp{Op: Ne, Left: Int(1), Right: Int(2)}).String() != "(1 <> 2)" {
		t.Error("Ne rendering wrong")
	}
}

func TestEvalPredicateErrorsInLoop(t *testing.T) {
	tbl := testTable(t)
	// Type-checks pass but evaluation fails mid-loop: division produces
	// NULL, never errors, so use a predicate whose evaluation errors via
	// string arithmetic that TypeOf can't catch... TypeOf does catch it,
	// so verify TypeOf gating instead.
	if _, err := EvalPredicate(tbl, &Arith{Op: Add, Left: &Col{"state"}, Right: Int(1)}); err == nil {
		t.Error("predicate with string arithmetic should be rejected")
	}
}
