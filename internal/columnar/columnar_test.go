package columnar

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len=%d count=%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	if b.Count() != 4 {
		t.Errorf("count = %d, want 4", b.Count())
	}
	if !b.Get(64) || b.Get(65) {
		t.Error("Get misreads bits")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 3 {
		t.Error("Clear failed")
	}
}

func TestBitmapFullAndNot(t *testing.T) {
	b := NewBitmapFull(100)
	if b.Count() != 100 {
		t.Errorf("full bitmap count = %d, want 100", b.Count())
	}
	b.Not()
	if b.Count() != 0 {
		t.Errorf("inverted full bitmap count = %d, want 0", b.Count())
	}
	b.Not()
	if b.Count() != 100 {
		t.Errorf("double inversion count = %d, want 100 (trim broken)", b.Count())
	}
}

func TestBitmapSetOps(t *testing.T) {
	a, b := NewBitmap(200), NewBitmap(200)
	for i := 0; i < 200; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	and := a.Clone()
	and.And(b) // multiples of 6
	if and.Count() != 34 {
		t.Errorf("and count = %d, want 34", and.Count())
	}
	or := a.Clone()
	or.Or(b)
	if or.Count() != 100+67-34 {
		t.Errorf("or count = %d, want 133", or.Count())
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 100-34 {
		t.Errorf("andnot count = %d, want 66", diff.Count())
	}
}

func TestBitmapForEachAndIndices(t *testing.T) {
	b := NewBitmap(100)
	want := []int32{3, 64, 65, 99}
	for _, i := range want {
		b.Set(int(i))
	}
	got := b.Indices()
	if len(got) != len(want) {
		t.Fatalf("indices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("indices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitmapMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And on mismatched lengths should panic")
		}
	}()
	NewBitmap(10).And(NewBitmap(20))
}

func TestBitmapCountProperty(t *testing.T) {
	f := func(idx []uint16) bool {
		b := NewBitmap(1 << 16)
		seen := map[uint16]bool{}
		for _, i := range idx {
			b.Set(int(i))
			seen[i] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt64Column(t *testing.T) {
	b := NewInt64Builder("qty")
	b.Append(10)
	b.AppendNull()
	b.Append(-3)
	col := b.Build()
	if col.Name() != "qty" || col.Type() != Int64 || col.Len() != 3 {
		t.Fatalf("metadata wrong: %s %v %d", col.Name(), col.Type(), col.Len())
	}
	if col.IsNull(0) || !col.IsNull(1) || col.IsNull(2) {
		t.Error("null tracking wrong")
	}
	if col.Int64(2) != -3 {
		t.Errorf("Int64(2) = %d", col.Int64(2))
	}
	if !col.Value(1).Null {
		t.Error("Value(1) should be NULL")
	}
}

func TestFloat64Column(t *testing.T) {
	b := NewFloat64Builder("price")
	b.Append(1.5)
	b.Append(2.5)
	col := b.Build()
	if col.IsNull(0) {
		t.Error("no nulls expected")
	}
	if col.Float64(1) != 2.5 {
		t.Errorf("Float64(1) = %v", col.Float64(1))
	}
}

func TestStringColumnDictionary(t *testing.T) {
	b := NewStringBuilder("state")
	for _, s := range []string{"NY", "CA", "NY", "TX", "CA", "NY"} {
		b.Append(s)
	}
	col := b.Build()
	if col.DictSize() != 3 {
		t.Fatalf("dict size = %d, want 3", col.DictSize())
	}
	// Dictionary sorted => codes order-preserving.
	ca, _ := col.Lookup("CA")
	ny, _ := col.Lookup("NY")
	tx, _ := col.Lookup("TX")
	if !(ca < ny && ny < tx) {
		t.Errorf("dictionary not sorted: CA=%d NY=%d TX=%d", ca, ny, tx)
	}
	if _, ok := col.Lookup("WA"); ok {
		t.Error("Lookup of absent value should fail")
	}
	if col.Value(0).S != "NY" || col.Decode(col.Code(3)) != "TX" {
		t.Error("code round trip broken")
	}
	// Equal strings share codes.
	if col.Code(0) != col.Code(2) || col.Code(0) != col.Code(5) {
		t.Error("equal values should share a dictionary code")
	}
}

func TestStringColumnNulls(t *testing.T) {
	b := NewStringBuilder("s")
	b.Append("x")
	b.AppendNull()
	col := b.Build()
	if !col.IsNull(1) || col.IsNull(0) {
		t.Error("string nulls wrong")
	}
}

func TestValueCompareAndEqual(t *testing.T) {
	if IntValue(1).Compare(IntValue(2)) != -1 ||
		IntValue(2).Compare(IntValue(1)) != 1 ||
		IntValue(2).Compare(IntValue(2)) != 0 {
		t.Error("int compare broken")
	}
	if StringValue("a").Compare(StringValue("b")) != -1 {
		t.Error("string compare broken")
	}
	if FloatValue(1.5).Compare(FloatValue(0.5)) != 1 {
		t.Error("float compare broken")
	}
	// NULLs sort first and equal only each other.
	if NullValue(Int64).Compare(IntValue(0)) != -1 {
		t.Error("NULL should sort first")
	}
	if !NullValue(Int64).Equal(NullValue(Int64)) {
		t.Error("NULL == NULL under Equal")
	}
	if NullValue(Int64).Equal(IntValue(0)) {
		t.Error("NULL != 0")
	}
	if IntValue(1).Equal(FloatValue(1)) {
		t.Error("cross-type Equal should be false")
	}
}

func TestTableAssembly(t *testing.T) {
	a := NewInt64Builder("id")
	b := NewStringBuilder("name")
	for i := 0; i < 5; i++ {
		a.Append(int64(i))
		b.Append("x")
	}
	tbl, err := NewTable("t", a.Build(), b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 5 || tbl.NumColumns() != 2 {
		t.Fatalf("rows=%d cols=%d", tbl.Rows(), tbl.NumColumns())
	}
	if tbl.Column("id") == nil || tbl.Column("nope") != nil {
		t.Error("Column lookup broken")
	}
	if tbl.ColumnIndex("name") != 1 || tbl.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex broken")
	}
	row := tbl.Row(3)
	if row[0].I != 3 || row[1].S != "x" {
		t.Errorf("Row(3) = %v", row)
	}
	if tbl.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
}

func TestTableValidation(t *testing.T) {
	a := NewInt64Builder("a")
	a.Append(1)
	short := NewInt64Builder("b")
	if _, err := NewTable("t", a.Build(), short.Build()); err == nil {
		t.Error("row-count mismatch should be rejected")
	}
	c1 := NewInt64Builder("dup")
	c1.Append(1)
	c2 := NewInt64Builder("dup")
	c2.Append(2)
	if _, err := NewTable("t", c1.Build(), c2.Build()); err == nil {
		t.Error("duplicate column names should be rejected")
	}
	if _, err := NewTable("t"); err == nil {
		t.Error("empty table should be rejected")
	}
}

func TestColumnFromValues(t *testing.T) {
	col, err := ColumnFromValues("v", Int64, []Value{IntValue(1), NullValue(Int64), IntValue(3)})
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 3 || !col.IsNull(1) {
		t.Error("int column from values wrong")
	}
	s, err := ColumnFromValues("s", String, []Value{StringValue("a"), StringValue("b")})
	if err != nil {
		t.Fatal(err)
	}
	if s.Value(1).S != "b" {
		t.Error("string column from values wrong")
	}
	f, err := ColumnFromValues("f", Float64, []Value{FloatValue(2.5)})
	if err != nil {
		t.Fatal(err)
	}
	if f.Value(0).F != 2.5 {
		t.Error("float column from values wrong")
	}
}

func TestTypeWidth(t *testing.T) {
	if Int64.Width() != 8 || Float64.Width() != 8 || String.Width() != 4 {
		t.Error("type widths wrong")
	}
}
