// Package columnar implements the in-memory column store the engine runs
// on — the stand-in for DB2 BLU's columnar tables.
//
// Tables are append-built, immutable afterwards. String columns are
// dictionary-encoded (the BLU trait the paper's kernels exploit: grouping
// keys arrive as compact codes); numeric columns are flat vectors. Nulls
// are tracked in a separate bitmap per column. Selections are bitmaps over
// row ids, so predicate evaluation composes without materializing rows.
package columnar

import "fmt"

// Type enumerates column types. The engine's aggregation kernels care
// about the physical width (4.3.1's mask layout), so each type knows it.
type Type int

const (
	// Int64 is a 64-bit signed integer (also used for surrogate keys and
	// dates encoded as day numbers).
	Int64 Type = iota
	// Float64 is a 64-bit IEEE float (DECIMAL stand-in).
	Float64
	// String is a dictionary-encoded variable-length string.
	String
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Width returns the in-kernel payload width in bytes. Strings travel as
// 32-bit dictionary codes.
func (t Type) Width() int {
	switch t {
	case Int64, Float64:
		return 8
	case String:
		return 4
	default:
		return 8
	}
}

// Value is one scalar value flowing between the executor's operators.
// Exactly one of the fields is meaningful, selected by Type; Null
// overrides all.
type Value struct {
	Type Type
	Null bool
	I    int64
	F    float64
	S    string
}

// NullValue returns a typed NULL.
func NullValue(t Type) Value { return Value{Type: t, Null: true} }

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Type: Int64, I: v} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Type: Float64, F: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{Type: String, S: v} }

// Equal reports deep equality, with NULL equal only to NULL.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	if v.Null || o.Null {
		return v.Null == o.Null
	}
	switch v.Type {
	case Int64:
		return v.I == o.I
	case Float64:
		return v.F == o.F
	case String:
		return v.S == o.S
	}
	return false
}

// Compare orders two non-null values of the same type: -1, 0, +1.
// NULLs sort first.
func (v Value) Compare(o Value) int {
	if v.Null || o.Null {
		switch {
		case v.Null && o.Null:
			return 0
		case v.Null:
			return -1
		default:
			return 1
		}
	}
	switch v.Type {
	case Int64:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
	case Float64:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
	case String:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
	}
	return 0
}

func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	}
	return "?"
}
