package columnar

import "testing"

func gatherFixture(t *testing.T) *Table {
	t.Helper()
	ints := NewInt64Builder("i")
	floats := NewFloat64Builder("f")
	strs := NewStringBuilder("s")
	vals := []struct {
		i       int64
		f       float64
		s       string
		nullRow bool
	}{
		{1, 1.5, "a", false},
		{2, 2.5, "b", true},
		{3, 3.5, "c", false},
		{4, 4.5, "a", false},
		{5, 5.5, "b", true},
	}
	for _, v := range vals {
		if v.nullRow {
			ints.AppendNull()
			floats.AppendNull()
			strs.AppendNull()
		} else {
			ints.Append(v.i)
			floats.Append(v.f)
			strs.Append(v.s)
		}
	}
	return MustNewTable("g", ints.Build(), floats.Build(), strs.Build())
}

func TestGatherInt64(t *testing.T) {
	tbl := gatherFixture(t)
	col := tbl.Column("i").(*Int64Column)
	out := col.Gather("picked", []int32{3, 0, 1})
	if out.Name() != "picked" || out.Len() != 3 {
		t.Fatalf("gathered: %s/%d", out.Name(), out.Len())
	}
	if out.Int64(0) != 4 || out.Int64(1) != 1 {
		t.Errorf("values = %d, %d", out.Int64(0), out.Int64(1))
	}
	if !out.IsNull(2) || out.IsNull(0) {
		t.Error("null tracking lost in gather")
	}
}

func TestGatherFloat64(t *testing.T) {
	tbl := gatherFixture(t)
	col := tbl.Column("f").(*Float64Column)
	out := col.Gather("f2", []int32{2, 4})
	if out.Float64(0) != 3.5 {
		t.Errorf("f[0] = %v", out.Float64(0))
	}
	if !out.IsNull(1) {
		t.Error("row 4 should stay NULL")
	}
	if len(out.Data()) != 2 {
		t.Error("Data() length wrong")
	}
}

func TestGatherStringSharesDict(t *testing.T) {
	tbl := gatherFixture(t)
	col := tbl.Column("s").(*StringColumn)
	out := col.Gather("s2", []int32{0, 3, 1})
	if out.DictSize() != col.DictSize() {
		t.Error("gather should share the dictionary")
	}
	if out.Value(0).S != "a" || out.Value(1).S != "a" {
		t.Errorf("values = %v, %v", out.Value(0), out.Value(1))
	}
	if out.Code(0) != out.Code(1) {
		t.Error("equal strings must share codes after gather")
	}
	if !out.IsNull(2) {
		t.Error("null lost")
	}
	if len(out.Codes()) != 3 {
		t.Error("Codes() length wrong")
	}
}

func TestGatherColumnDispatch(t *testing.T) {
	tbl := gatherFixture(t)
	rows := []int32{0, 2}
	for _, name := range []string{"i", "f", "s"} {
		out := GatherColumn(tbl.Column(name), name+"_g", rows)
		if out.Len() != 2 || out.Name() != name+"_g" {
			t.Errorf("%s: len=%d name=%s", name, out.Len(), out.Name())
		}
		if !out.Value(0).Equal(tbl.Column(name).Value(0)) {
			t.Errorf("%s: value mismatch after gather", name)
		}
	}
}

func TestGatherTable(t *testing.T) {
	tbl := gatherFixture(t)
	out := GatherTable("sub", tbl, []int32{4, 2, 0})
	if out.Name() != "sub" || out.Rows() != 3 || out.NumColumns() != 3 {
		t.Fatalf("table = %s %dx%d", out.Name(), out.Rows(), out.NumColumns())
	}
	// Row 0 of the gathered table is source row 4.
	row := out.Row(0)
	if !row[0].Null || !row[1].Null || !row[2].Null {
		t.Errorf("row 4 should be all NULL, got %v", row)
	}
	if out.Row(2)[0].I != 1 {
		t.Errorf("row order wrong: %v", out.Row(2))
	}
	// Empty gather.
	empty := GatherTable("empty", tbl, nil)
	if empty.Rows() != 0 {
		t.Errorf("empty gather rows = %d", empty.Rows())
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := gatherFixture(t)
	if tbl.Name() != "g" {
		t.Error("Name wrong")
	}
	if !tbl.HasColumn("i") || tbl.HasColumn("missing") {
		t.Error("HasColumn wrong")
	}
	if len(tbl.Columns()) != 3 {
		t.Error("Columns wrong")
	}
	if Int64.String() != "int64" || Float64.String() != "float64" || String.String() != "string" {
		t.Error("type strings wrong")
	}
	if Type(99).String() == "" || Type(99).Width() != 8 {
		t.Error("unknown type fallbacks wrong")
	}
	if NullValue(String).String() != "NULL" || StringValue("x").String() != "x" {
		t.Error("value strings wrong")
	}
	if FloatValue(1.5).String() != "1.5" {
		t.Errorf("float string = %s", FloatValue(1.5).String())
	}
}

func TestDirectConstructors(t *testing.T) {
	nulls := NewBitmap(2)
	nulls.Set(1)
	ic := NewInt64Column("ic", []int64{7, 0}, nulls)
	if ic.Int64(0) != 7 || !ic.IsNull(1) {
		t.Error("NewInt64Column wrong")
	}
	fc := NewFloat64Column("fc", []float64{2.5, 0}, nil)
	if fc.Float64(0) != 2.5 || fc.IsNull(1) {
		t.Error("NewFloat64Column wrong")
	}
	if len(ic.Data()) != 2 {
		t.Error("Data accessor wrong")
	}
}
