package columnar

import (
	"errors"
	"fmt"
)

// Table is an immutable columnar table.
type Table struct {
	name    string
	columns []Column
	byName  map[string]int
	rows    int
}

// NewTable assembles a table from columns, which must share a row count.
func NewTable(name string, columns ...Column) (*Table, error) {
	if len(columns) == 0 {
		return nil, errors.New("columnar: table needs at least one column")
	}
	rows := columns[0].Len()
	byName := make(map[string]int, len(columns))
	for i, c := range columns {
		if c.Len() != rows {
			return nil, fmt.Errorf("columnar: column %q has %d rows, want %d", c.Name(), c.Len(), rows)
		}
		if _, dup := byName[c.Name()]; dup {
			return nil, fmt.Errorf("columnar: duplicate column %q", c.Name())
		}
		byName[c.Name()] = i
	}
	return &Table{name: name, columns: columns, byName: byName, rows: rows}, nil
}

// MustNewTable is NewTable that panics on error (generator/test use).
func MustNewTable(name string, columns ...Column) *Table {
	t, err := NewTable(name, columns...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// NumColumns returns the column count.
func (t *Table) NumColumns() int { return len(t.columns) }

// Columns returns the columns in declaration order.
func (t *Table) Columns() []Column { return t.columns }

// Column returns the named column, or nil.
func (t *Table) Column(name string) Column {
	if i, ok := t.byName[name]; ok {
		return t.columns[i]
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// SizeBytes estimates the table's in-memory footprint: the number the
// optimizer uses against device-memory thresholds.
func (t *Table) SizeBytes() int64 {
	var total int64
	for _, c := range t.columns {
		switch col := c.(type) {
		case *Int64Column:
			total += int64(col.Len()) * 8
		case *Float64Column:
			total += int64(col.Len()) * 8
		case *StringColumn:
			total += int64(col.Len()) * 4
			for _, s := range col.dict {
				total += int64(len(s))
			}
		default:
			total += int64(c.Len()) * 8
		}
	}
	return total
}

// Row materializes row i as values in column order (slow path for result
// display and tests).
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.columns))
	for c, col := range t.columns {
		out[c] = col.Value(i)
	}
	return out
}
