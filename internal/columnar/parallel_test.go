package columnar

import (
	"fmt"
	"math"
	"testing"
)

// testDegrees are the degrees every differential test sweeps; sizes
// include 0, 1 and non-chunk-aligned row counts on purpose.
var testDegrees = []int{1, 2, 8}

var testSizes = []int{0, 1, 5, 63, 64, 65, 1000, 4097}

func buildTestColumns(n int, withNulls bool) (*Int64Column, *Float64Column, *StringColumn) {
	ib := NewInt64Builder("i")
	fb := NewFloat64Builder("f")
	sb := NewStringBuilder("s")
	for r := 0; r < n; r++ {
		if withNulls && r%7 == 3 {
			ib.AppendNull()
			fb.AppendNull()
			sb.AppendNull()
			continue
		}
		ib.Append(int64(r*31 - 1000))
		fb.Append(float64(r) * 0.5)
		sb.Append(fmt.Sprintf("v%03d", r%97))
	}
	return ib.Build(), fb.Build(), sb.Build()
}

// reversedRows is an out-of-order row vector over [0, n).
func reversedRows(n int) []int32 {
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(n - 1 - i)
	}
	return rows
}

func sameNullShape(t *testing.T, label string, a, b interface {
	Len() int
	IsNull(int) bool
}) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d != %d", label, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) != b.IsNull(i) {
			t.Fatalf("%s: null mismatch at row %d", label, i)
		}
	}
}

func TestGatherDegreeMatchesSequential(t *testing.T) {
	for _, n := range testSizes {
		for _, withNulls := range []bool{false, true} {
			ic, fc, sc := buildTestColumns(n, withNulls)
			rows := reversedRows(n)
			seqI := ic.Gather("i2", rows)
			seqF := fc.Gather("f2", rows)
			seqS := sc.Gather("s2", rows)
			for _, d := range testDegrees {
				label := fmt.Sprintf("n=%d nulls=%v degree=%d", n, withNulls, d)
				parI := ic.GatherDegree("i2", rows, d)
				parF := fc.GatherDegree("f2", rows, d)
				parS := sc.GatherDegree("s2", rows, d)
				sameNullShape(t, label+" int", seqI, parI)
				sameNullShape(t, label+" float", seqF, parF)
				sameNullShape(t, label+" string", seqS, parS)
				// The lazily-allocated bitmap must stay lazy.
				if (seqI.nulls == nil) != (parI.nulls == nil) {
					t.Errorf("%s: null bitmap allocation differs", label)
				}
				for i := 0; i < n; i++ {
					if seqI.Int64(i) != parI.Int64(i) {
						t.Fatalf("%s: int row %d: %d != %d", label, i, seqI.Int64(i), parI.Int64(i))
					}
					if math.Float64bits(seqF.Float64(i)) != math.Float64bits(parF.Float64(i)) {
						t.Fatalf("%s: float row %d differs", label, i)
					}
					if seqS.Code(i) != parS.Code(i) {
						t.Fatalf("%s: string row %d: code %d != %d", label, i, seqS.Code(i), parS.Code(i))
					}
				}
			}
		}
	}
}

func TestGatherColumnDegreeDispatch(t *testing.T) {
	ic, fc, sc := buildTestColumns(1000, true)
	rows := reversedRows(1000)
	for _, c := range []Column{ic, fc, sc} {
		seq := GatherColumn(c, "out", rows)
		for _, d := range testDegrees {
			par := GatherColumnDegree(c, "out", rows, d)
			if par.Name() != "out" || par.Type() != c.Type() {
				t.Fatalf("degree %d: wrong column identity", d)
			}
			for i := 0; i < 1000; i++ {
				sv, pv := seq.Value(i), par.Value(i)
				if sv.Null != pv.Null || (!sv.Null && sv.String() != pv.String()) {
					t.Fatalf("degree %d %v: row %d: %v != %v", d, c.Type(), i, sv, pv)
				}
			}
		}
	}
}

func TestGatherTableDegreeMatchesSequential(t *testing.T) {
	ic, fc, sc := buildTestColumns(4097, true)
	tbl := MustNewTable("t", ic, fc, sc)
	rows := reversedRows(4097)
	seq := GatherTable("out", tbl, rows)
	for _, d := range testDegrees {
		par := GatherTableDegree("out", tbl, rows, d)
		if par.Rows() != seq.Rows() || par.NumColumns() != seq.NumColumns() {
			t.Fatalf("degree %d: shape differs", d)
		}
		for ci, c := range seq.Columns() {
			pc := par.Columns()[ci]
			for i := 0; i < seq.Rows(); i++ {
				sv, pv := c.Value(i), pc.Value(i)
				if sv.Null != pv.Null || (!sv.Null && sv.String() != pv.String()) {
					t.Fatalf("degree %d col %s row %d: %v != %v", d, c.Name(), i, sv, pv)
				}
			}
		}
	}
}

func TestIndicesDegreeMatchesSequential(t *testing.T) {
	for _, n := range testSizes {
		patterns := []func(i int) bool{
			func(i int) bool { return false },
			func(i int) bool { return true },
			func(i int) bool { return i%3 == 0 },
			func(i int) bool { return i%64 == 63 },
		}
		for pi, keep := range patterns {
			bm := NewBitmap(n)
			for i := 0; i < n; i++ {
				if keep(i) {
					bm.Set(i)
				}
			}
			seq := bm.Indices()
			for _, d := range testDegrees {
				par := bm.IndicesDegree(d)
				if len(par) != len(seq) {
					t.Fatalf("n=%d pattern=%d degree=%d: %d indices, want %d", n, pi, d, len(par), len(seq))
				}
				for i := range seq {
					if par[i] != seq[i] {
						t.Fatalf("n=%d pattern=%d degree=%d: index %d: %d != %d", n, pi, d, i, par[i], seq[i])
					}
				}
			}
		}
	}
}

func TestIotaRows(t *testing.T) {
	for _, n := range testSizes {
		for _, d := range testDegrees {
			rows := IotaRows(n, d)
			if len(rows) != n {
				t.Fatalf("n=%d degree=%d: got %d rows", n, d, len(rows))
			}
			for i, r := range rows {
				if r != int32(i) {
					t.Fatalf("n=%d degree=%d: rows[%d] = %d", n, d, i, r)
				}
			}
		}
	}
}

// BenchmarkParallelGather tracks the hot gather path; compare degree
// sub-benchmarks with benchstat for the wall-clock speedup.
func BenchmarkParallelGather(b *testing.B) {
	const n = 1 << 20
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i * 7)
	}
	col := NewInt64Column("c", data, nil)
	rows := reversedRows(n)
	for _, degree := range []int{1, 8} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			for i := 0; i < b.N; i++ {
				col.GatherDegree("out", rows, degree)
			}
		})
	}
}
