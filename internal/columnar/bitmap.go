package columnar

import (
	"math/bits"

	"blugpu/internal/parallel"
)

// Bitmap is a fixed-length bitset over row ids. The engine uses bitmaps
// for null tracking and for selection vectors produced by predicate
// evaluation.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an all-zero bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// NewBitmapFull returns an all-one bitmap over n rows.
func NewBitmapFull(n int) *Bitmap {
	b := NewBitmap(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
	return b
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects o into b in place. Panics if lengths differ.
func (b *Bitmap) And(o *Bitmap) {
	b.mustMatch(o)
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions o into b in place. Panics if lengths differ.
func (b *Bitmap) Or(o *Bitmap) {
	b.mustMatch(o)
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// AndNot removes o's bits from b in place. Panics if lengths differ.
func (b *Bitmap) AndNot(o *Bitmap) {
	b.mustMatch(o)
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// Not inverts b in place.
func (b *Bitmap) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

// Indices materializes the set bits as a slice of row ids. It is the
// sequential reference for IndicesDegree.
func (b *Bitmap) Indices() []int32 {
	out := make([]int32, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, int32(i)) })
	return out
}

// indicesGrainWords is the minimum bitmap words per worker for the
// parallel selection scan (64 rows per word).
const indicesGrainWords = 256

// IndicesDegree is the parallel selection scan: per-worker popcounts
// size each worker's output region, then workers emit their word ranges
// independently. The result is identical to Indices at any degree.
func (b *Bitmap) IndicesDegree(degree int) []int32 {
	nw := len(b.words)
	w := parallel.Workers(nw, indicesGrainWords, degree)
	if w <= 1 {
		return b.Indices()
	}
	counts := make([]int, w)
	parallel.For(nw, indicesGrainWords, degree, func(lo, hi, worker int) {
		c := 0
		for _, word := range b.words[lo:hi] {
			c += bits.OnesCount64(word)
		}
		counts[worker] = c
	})
	total := 0
	offsets := make([]int, w)
	for i, c := range counts {
		offsets[i] = total
		total += c
	}
	out := make([]int32, total)
	parallel.For(nw, indicesGrainWords, degree, func(lo, hi, worker int) {
		pos := offsets[worker]
		for wi := lo; wi < hi; wi++ {
			word := b.words[wi]
			for word != 0 {
				out[pos] = int32(wi*64 + bits.TrailingZeros64(word))
				pos++
				word &= word - 1
			}
		}
	})
	return out
}

func (b *Bitmap) mustMatch(o *Bitmap) {
	if b.n != o.n {
		panic("columnar: bitmap length mismatch")
	}
}

// trim clears bits beyond n in the last word so Count stays exact.
func (b *Bitmap) trim() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}
