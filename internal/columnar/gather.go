package columnar

// Gather builds a new column containing the given rows, in order. The
// executor uses it to materialize filtered, joined, sorted and limited
// intermediates without re-encoding dictionaries.
func (c *Int64Column) Gather(name string, rows []int32) *Int64Column {
	data := make([]int64, len(rows))
	var nulls *Bitmap
	for i, r := range rows {
		data[i] = c.data[r]
		if c.IsNull(int(r)) {
			if nulls == nil {
				nulls = NewBitmap(len(rows))
			}
			nulls.Set(i)
		}
	}
	return &Int64Column{name: name, data: data, nulls: nulls}
}

// Gather builds a new column containing the given rows, in order.
func (c *Float64Column) Gather(name string, rows []int32) *Float64Column {
	data := make([]float64, len(rows))
	var nulls *Bitmap
	for i, r := range rows {
		data[i] = c.data[r]
		if c.IsNull(int(r)) {
			if nulls == nil {
				nulls = NewBitmap(len(rows))
			}
			nulls.Set(i)
		}
	}
	return &Float64Column{name: name, data: data, nulls: nulls}
}

// Gather builds a new column containing the given rows, in order, sharing
// the dictionary with the source column.
func (c *StringColumn) Gather(name string, rows []int32) *StringColumn {
	codes := make([]int32, len(rows))
	var nulls *Bitmap
	for i, r := range rows {
		codes[i] = c.codes[r]
		if c.IsNull(int(r)) {
			if nulls == nil {
				nulls = NewBitmap(len(rows))
			}
			nulls.Set(i)
		}
	}
	return &StringColumn{name: name, dict: c.dict, codes: codes, nulls: nulls}
}

// GatherColumn dispatches Gather over the concrete column types.
func GatherColumn(c Column, name string, rows []int32) Column {
	switch col := c.(type) {
	case *Int64Column:
		return col.Gather(name, rows)
	case *Float64Column:
		return col.Gather(name, rows)
	case *StringColumn:
		return col.Gather(name, rows)
	default:
		// Generic fallback through Values.
		vals := make([]Value, len(rows))
		for i, r := range rows {
			vals[i] = c.Value(int(r))
		}
		out, err := ColumnFromValues(name, c.Type(), vals)
		if err != nil {
			panic(err)
		}
		return out
	}
}

// GatherTable materializes the given rows of tbl, in order, under a new
// table name.
func GatherTable(name string, tbl *Table, rows []int32) *Table {
	cols := make([]Column, tbl.NumColumns())
	for i, c := range tbl.Columns() {
		cols[i] = GatherColumn(c, c.Name(), rows)
	}
	return MustNewTable(name, cols...)
}
