package columnar

import "blugpu/internal/parallel"

// gatherGrain is the minimum rows per worker for parallel gathers: below
// it, goroutine handoff costs more than the copy itself.
const gatherGrain = 2048

// Gather builds a new column containing the given rows, in order. The
// executor uses it to materialize filtered, joined, sorted and limited
// intermediates without re-encoding dictionaries.
//
// Gather is the sequential reference; GatherDegree is the parallel path
// the engine threads its Degree into, and the differential tests assert
// the two produce identical columns.
func (c *Int64Column) Gather(name string, rows []int32) *Int64Column {
	data := make([]int64, len(rows))
	var nulls *Bitmap
	for i, r := range rows {
		data[i] = c.data[r]
		if c.IsNull(int(r)) {
			if nulls == nil {
				nulls = NewBitmap(len(rows))
			}
			nulls.Set(i)
		}
	}
	return &Int64Column{name: name, data: data, nulls: nulls}
}

// Gather builds a new column containing the given rows, in order.
func (c *Float64Column) Gather(name string, rows []int32) *Float64Column {
	data := make([]float64, len(rows))
	var nulls *Bitmap
	for i, r := range rows {
		data[i] = c.data[r]
		if c.IsNull(int(r)) {
			if nulls == nil {
				nulls = NewBitmap(len(rows))
			}
			nulls.Set(i)
		}
	}
	return &Float64Column{name: name, data: data, nulls: nulls}
}

// Gather builds a new column containing the given rows, in order, sharing
// the dictionary with the source column.
func (c *StringColumn) Gather(name string, rows []int32) *StringColumn {
	codes := make([]int32, len(rows))
	var nulls *Bitmap
	for i, r := range rows {
		codes[i] = c.codes[r]
		if c.IsNull(int(r)) {
			if nulls == nil {
				nulls = NewBitmap(len(rows))
			}
			nulls.Set(i)
		}
	}
	return &StringColumn{name: name, dict: c.dict, codes: codes, nulls: nulls}
}

// GatherDegree is the parallel Gather: disjoint row ranges are copied by
// the worker pool, each worker writing its own 64-aligned region of the
// output (and of the shared null bitmap), so the result is bit-identical
// to Gather at any degree.
func (c *Int64Column) GatherDegree(name string, rows []int32, degree int) *Int64Column {
	n := len(rows)
	data := make([]int64, n)
	if c.nulls == nil {
		parallel.For(n, gatherGrain, degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				data[i] = c.data[rows[i]]
			}
		})
		return &Int64Column{name: name, data: data}
	}
	nulls, found := NewBitmap(n), make([]bool, parallel.Workers(n, gatherGrain, degree))
	parallel.For(n, gatherGrain, degree, func(lo, hi, worker int) {
		any := false
		for i := lo; i < hi; i++ {
			data[i] = c.data[rows[i]]
			if c.IsNull(int(rows[i])) {
				nulls.Set(i)
				any = true
			}
		}
		found[worker] = any
	})
	return &Int64Column{name: name, data: data, nulls: keepNulls(nulls, found)}
}

// GatherDegree is the parallel Gather for float columns.
func (c *Float64Column) GatherDegree(name string, rows []int32, degree int) *Float64Column {
	n := len(rows)
	data := make([]float64, n)
	if c.nulls == nil {
		parallel.For(n, gatherGrain, degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				data[i] = c.data[rows[i]]
			}
		})
		return &Float64Column{name: name, data: data}
	}
	nulls, found := NewBitmap(n), make([]bool, parallel.Workers(n, gatherGrain, degree))
	parallel.For(n, gatherGrain, degree, func(lo, hi, worker int) {
		any := false
		for i := lo; i < hi; i++ {
			data[i] = c.data[rows[i]]
			if c.IsNull(int(rows[i])) {
				nulls.Set(i)
				any = true
			}
		}
		found[worker] = any
	})
	return &Float64Column{name: name, data: data, nulls: keepNulls(nulls, found)}
}

// GatherDegree is the parallel Gather for dictionary columns; the
// dictionary is shared with the source, only codes are copied.
func (c *StringColumn) GatherDegree(name string, rows []int32, degree int) *StringColumn {
	n := len(rows)
	codes := make([]int32, n)
	if c.nulls == nil {
		parallel.For(n, gatherGrain, degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				codes[i] = c.codes[rows[i]]
			}
		})
		return &StringColumn{name: name, dict: c.dict, codes: codes}
	}
	nulls, found := NewBitmap(n), make([]bool, parallel.Workers(n, gatherGrain, degree))
	parallel.For(n, gatherGrain, degree, func(lo, hi, worker int) {
		any := false
		for i := lo; i < hi; i++ {
			codes[i] = c.codes[rows[i]]
			if c.IsNull(int(rows[i])) {
				nulls.Set(i)
				any = true
			}
		}
		found[worker] = any
	})
	return &StringColumn{name: name, dict: c.dict, codes: codes, nulls: keepNulls(nulls, found)}
}

// keepNulls drops the bitmap when no worker found a null, matching the
// sequential Gather's lazily-allocated bitmap exactly.
func keepNulls(nulls *Bitmap, found []bool) *Bitmap {
	for _, f := range found {
		if f {
			return nulls
		}
	}
	return nil
}

// GatherColumn dispatches Gather over the concrete column types.
func GatherColumn(c Column, name string, rows []int32) Column {
	switch col := c.(type) {
	case *Int64Column:
		return col.Gather(name, rows)
	case *Float64Column:
		return col.Gather(name, rows)
	case *StringColumn:
		return col.Gather(name, rows)
	default:
		// Generic fallback through Values.
		vals := make([]Value, len(rows))
		for i, r := range rows {
			vals[i] = c.Value(int(r))
		}
		out, err := ColumnFromValues(name, c.Type(), vals)
		if err != nil {
			panic(err)
		}
		return out
	}
}

// GatherColumnDegree dispatches GatherDegree over the concrete column
// types; the generic fallback materializes values on the worker pool.
func GatherColumnDegree(c Column, name string, rows []int32, degree int) Column {
	switch col := c.(type) {
	case *Int64Column:
		return col.GatherDegree(name, rows, degree)
	case *Float64Column:
		return col.GatherDegree(name, rows, degree)
	case *StringColumn:
		return col.GatherDegree(name, rows, degree)
	default:
		vals := make([]Value, len(rows))
		parallel.For(len(rows), gatherGrain, degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				vals[i] = c.Value(int(rows[i]))
			}
		})
		out, err := ColumnFromValues(name, c.Type(), vals)
		if err != nil {
			panic(err)
		}
		return out
	}
}

// GatherTable materializes the given rows of tbl, in order, under a new
// table name.
func GatherTable(name string, tbl *Table, rows []int32) *Table {
	cols := make([]Column, tbl.NumColumns())
	for i, c := range tbl.Columns() {
		cols[i] = GatherColumn(c, c.Name(), rows)
	}
	return MustNewTable(name, cols...)
}

// GatherTableDegree materializes the given rows of tbl on the worker
// pool: rows are split across workers within each column.
func GatherTableDegree(name string, tbl *Table, rows []int32, degree int) *Table {
	cols := make([]Column, tbl.NumColumns())
	for i, c := range tbl.Columns() {
		cols[i] = GatherColumnDegree(c, c.Name(), rows, degree)
	}
	return MustNewTable(name, cols...)
}

// IotaRows returns [0, n) as row ids, filled by the worker pool — the
// "select everything" row vector scans and renames start from.
func IotaRows(n, degree int) []int32 {
	rows := make([]int32, n)
	parallel.For(n, gatherGrain, degree, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			rows[i] = int32(i)
		}
	})
	return rows
}
