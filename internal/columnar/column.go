package columnar

import (
	"fmt"
	"sort"
)

// Column is one immutable column of a table.
type Column interface {
	// Name is the column's name within its table.
	Name() string
	// Type is the logical type.
	Type() Type
	// Len is the row count.
	Len() int
	// IsNull reports whether row i is NULL.
	IsNull(i int) bool
	// Value materializes row i as a Value (slow path; kernels use the
	// typed accessors on the concrete types).
	Value(i int) Value
}

// --- Int64 ---

// Int64Column is a flat vector of 64-bit integers with an optional null
// bitmap (nil when no row is NULL).
type Int64Column struct {
	name  string
	data  []int64
	nulls *Bitmap
}

// NewInt64Column builds a column from data; nulls may be nil.
func NewInt64Column(name string, data []int64, nulls *Bitmap) *Int64Column {
	return &Int64Column{name: name, data: data, nulls: nulls}
}

func (c *Int64Column) Name() string { return c.name }
func (c *Int64Column) Type() Type   { return Int64 }
func (c *Int64Column) Len() int     { return len(c.data) }
func (c *Int64Column) IsNull(i int) bool {
	return c.nulls != nil && c.nulls.Get(i)
}
func (c *Int64Column) Value(i int) Value {
	if c.IsNull(i) {
		return NullValue(Int64)
	}
	return IntValue(c.data[i])
}

// Int64 returns the raw value of row i (undefined for NULL rows).
func (c *Int64Column) Int64(i int) int64 { return c.data[i] }

// Data exposes the backing vector for kernel-speed scans.
func (c *Int64Column) Data() []int64 { return c.data }

// --- Float64 ---

// Float64Column is a flat vector of float64 with an optional null bitmap.
type Float64Column struct {
	name  string
	data  []float64
	nulls *Bitmap
}

// NewFloat64Column builds a column from data; nulls may be nil.
func NewFloat64Column(name string, data []float64, nulls *Bitmap) *Float64Column {
	return &Float64Column{name: name, data: data, nulls: nulls}
}

func (c *Float64Column) Name() string { return c.name }
func (c *Float64Column) Type() Type   { return Float64 }
func (c *Float64Column) Len() int     { return len(c.data) }
func (c *Float64Column) IsNull(i int) bool {
	return c.nulls != nil && c.nulls.Get(i)
}
func (c *Float64Column) Value(i int) Value {
	if c.IsNull(i) {
		return NullValue(Float64)
	}
	return FloatValue(c.data[i])
}

// Float64 returns the raw value of row i.
func (c *Float64Column) Float64(i int) float64 { return c.data[i] }

// Data exposes the backing vector.
func (c *Float64Column) Data() []float64 { return c.data }

// --- String (dictionary-encoded) ---

// StringColumn stores strings as 32-bit codes into a sorted dictionary —
// BLU's dictionary compression. Grouping and equality run on codes;
// order comparisons also run on codes because the dictionary is sorted.
type StringColumn struct {
	name  string
	dict  []string // sorted, unique
	codes []int32
	nulls *Bitmap
}

func (c *StringColumn) Name() string { return c.name }
func (c *StringColumn) Type() Type   { return String }
func (c *StringColumn) Len() int     { return len(c.codes) }
func (c *StringColumn) IsNull(i int) bool {
	return c.nulls != nil && c.nulls.Get(i)
}
func (c *StringColumn) Value(i int) Value {
	if c.IsNull(i) {
		return NullValue(String)
	}
	return StringValue(c.dict[c.codes[i]])
}

// Code returns the dictionary code of row i.
func (c *StringColumn) Code(i int) int32 { return c.codes[i] }

// Codes exposes the backing code vector.
func (c *StringColumn) Codes() []int32 { return c.codes }

// DictSize returns the number of distinct values in the dictionary.
func (c *StringColumn) DictSize() int { return len(c.dict) }

// Decode maps a code back to its string.
func (c *StringColumn) Decode(code int32) string { return c.dict[code] }

// Lookup returns the code for s and whether s is in the dictionary.
func (c *StringColumn) Lookup(s string) (int32, bool) {
	i := sort.SearchStrings(c.dict, s)
	if i < len(c.dict) && c.dict[i] == s {
		return int32(i), true
	}
	return 0, false
}

// --- Builders ---

// Int64Builder accumulates an Int64Column.
type Int64Builder struct {
	name  string
	data  []int64
	nulls []int
}

// NewInt64Builder returns a builder for the named column.
func NewInt64Builder(name string) *Int64Builder { return &Int64Builder{name: name} }

// Append adds one value.
func (b *Int64Builder) Append(v int64) { b.data = append(b.data, v) }

// AppendNull adds one NULL.
func (b *Int64Builder) AppendNull() {
	b.nulls = append(b.nulls, len(b.data))
	b.data = append(b.data, 0)
}

// Len returns the rows appended so far.
func (b *Int64Builder) Len() int { return len(b.data) }

// Build freezes the column.
func (b *Int64Builder) Build() *Int64Column {
	return &Int64Column{name: b.name, data: b.data, nulls: buildNulls(len(b.data), b.nulls)}
}

// Float64Builder accumulates a Float64Column.
type Float64Builder struct {
	name  string
	data  []float64
	nulls []int
}

// NewFloat64Builder returns a builder for the named column.
func NewFloat64Builder(name string) *Float64Builder { return &Float64Builder{name: name} }

// Append adds one value.
func (b *Float64Builder) Append(v float64) { b.data = append(b.data, v) }

// AppendNull adds one NULL.
func (b *Float64Builder) AppendNull() {
	b.nulls = append(b.nulls, len(b.data))
	b.data = append(b.data, 0)
}

// Len returns the rows appended so far.
func (b *Float64Builder) Len() int { return len(b.data) }

// Build freezes the column.
func (b *Float64Builder) Build() *Float64Column {
	return &Float64Column{name: b.name, data: b.data, nulls: buildNulls(len(b.data), b.nulls)}
}

// StringBuilder accumulates a dictionary-encoded StringColumn.
type StringBuilder struct {
	name   string
	values []string
	nulls  []int
}

// NewStringBuilder returns a builder for the named column.
func NewStringBuilder(name string) *StringBuilder { return &StringBuilder{name: name} }

// Append adds one value.
func (b *StringBuilder) Append(v string) { b.values = append(b.values, v) }

// AppendNull adds one NULL.
func (b *StringBuilder) AppendNull() {
	b.nulls = append(b.nulls, len(b.values))
	b.values = append(b.values, "")
}

// Len returns the rows appended so far.
func (b *StringBuilder) Len() int { return len(b.values) }

// Build freezes the column, constructing the sorted dictionary.
func (b *StringBuilder) Build() *StringColumn {
	distinct := make(map[string]struct{}, len(b.values))
	for _, v := range b.values {
		distinct[v] = struct{}{}
	}
	dict := make([]string, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Strings(dict)
	codeOf := make(map[string]int32, len(dict))
	for i, v := range dict {
		codeOf[v] = int32(i)
	}
	codes := make([]int32, len(b.values))
	for i, v := range b.values {
		codes[i] = codeOf[v]
	}
	return &StringColumn{
		name:  b.name,
		dict:  dict,
		codes: codes,
		nulls: buildNulls(len(b.values), b.nulls),
	}
}

func buildNulls(n int, nullRows []int) *Bitmap {
	if len(nullRows) == 0 {
		return nil
	}
	bm := NewBitmap(n)
	for _, i := range nullRows {
		bm.Set(i)
	}
	return bm
}

// ColumnFromValues builds a column of the given type from generic values
// (used by tests and the SQL shell's INSERT path).
func ColumnFromValues(name string, t Type, values []Value) (Column, error) {
	switch t {
	case Int64:
		b := NewInt64Builder(name)
		for _, v := range values {
			if v.Null {
				b.AppendNull()
			} else {
				b.Append(v.I)
			}
		}
		return b.Build(), nil
	case Float64:
		b := NewFloat64Builder(name)
		for _, v := range values {
			if v.Null {
				b.AppendNull()
			} else {
				b.Append(v.F)
			}
		}
		return b.Build(), nil
	case String:
		b := NewStringBuilder(name)
		for _, v := range values {
			if v.Null {
				b.AppendNull()
			} else {
				b.Append(v.S)
			}
		}
		return b.Build(), nil
	default:
		return nil, fmt.Errorf("columnar: unsupported type %v", t)
	}
}
