package metrics

import (
	"bytes"
	"math"
	"runtime"
	rtm "runtime/metrics"
	"strings"
	"testing"

	"blugpu/internal/monitor"
)

func TestConvertRuntimeHist(t *testing.T) {
	h := &rtm.Float64Histogram{
		Counts:  []uint64{2, 0, 3},
		Buckets: []float64{math.Inf(-1), 0.001, 0.002, math.Inf(1)},
	}
	got := convertRuntimeHist(h)
	if got.Count != 5 {
		t.Fatalf("count = %d, want 5", got.Count)
	}
	// The -Inf..0.001 bucket exports with the finite bound; the empty
	// middle bucket is skipped; the 0.002..+Inf bucket folds into Count
	// only (the exposition synthesizes +Inf from the count).
	if len(got.Buckets) != 1 || got.Buckets[0].UpperBound != 0.001 || got.Buckets[0].CumCount != 2 {
		t.Fatalf("buckets = %+v", got.Buckets)
	}
	// Midpoint sum: unbounded edges contribute their finite bound:
	// 2*0.001 + 3*0.002 = 0.008.
	if math.Abs(got.Sum-0.008) > 1e-12 {
		t.Fatalf("sum = %v, want 0.008", got.Sum)
	}
	if convertRuntimeHist(nil).Count != 0 {
		t.Fatal("nil histogram must convert to zero")
	}
}

// TestSampleRuntimeLive reads the real runtime surface: the sample must
// carry live values for the metrics every supported toolchain exports.
func TestSampleRuntimeLive(t *testing.T) {
	runtime.GC() // guarantee at least one completed cycle and pause
	rt := SampleRuntime()
	if rt.Goroutines == 0 {
		t.Fatal("goroutine count cannot be zero in a running process")
	}
	if rt.HeapBytes == 0 || rt.TotalBytes == 0 {
		t.Fatalf("memory classes unset: heap=%d total=%d", rt.HeapBytes, rt.TotalBytes)
	}
	if rt.GCCycles == 0 {
		t.Fatal("gc cycles unset after an explicit runtime.GC()")
	}
	if rt.GCPause.Count == 0 {
		t.Fatal("gc pause histogram empty after an explicit runtime.GC()")
	}
}

// TestCollectRuntimeGolden locks the blu_go_* exposition — from a
// synthetic sample, since the real runtime is nondeterministic.
func TestCollectRuntimeGolden(t *testing.T) {
	rt := &RuntimeStats{
		Goroutines: 12,
		HeapBytes:  1 << 20,
		TotalBytes: 1 << 22,
		GCCycles:   3,
		GCPause: RuntimeHist{
			Buckets: []Bucket{{UpperBound: 64e-6, CumCount: 2}, {UpperBound: 128e-6, CumCount: 3}},
			Sum:     3.2e-4, Count: 4,
		},
		SchedLatency: RuntimeHist{
			Buckets: []Bucket{{UpperBound: 1e-6, CumCount: 90}, {UpperBound: 1e-3, CumCount: 99}},
			Sum:     0.0105, Count: 100,
		},
	}
	var text bytes.Buffer
	r := Collect(Sources{Monitor: monitor.New(), Runtime: func() *RuntimeStats { return rt }})
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(text.Bytes()); err != nil {
		t.Fatalf("runtime exposition invalid: %v\n%s", err, text.String())
	}
	golden(t, "runtime_golden.txt", text.Bytes())
	for _, want := range []string{
		"blu_go_goroutines 12",
		"blu_go_heap_objects_bytes 1048576",
		"blu_go_memory_total_bytes 4194304",
		"blu_go_gc_cycles_total 3",
		`blu_go_gc_pause_seconds_bucket{le="+Inf"} 4`,
		"blu_go_sched_latency_seconds_count 100",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("runtime scrape missing %q", want)
		}
	}

	// Without a runtime source the family is absent, keeping the
	// pre-existing goldens byte-stable.
	var bare bytes.Buffer
	Collect(Sources{Monitor: monitor.New()}).WriteText(&bare)
	if strings.Contains(bare.String(), "blu_go_") {
		t.Fatal("blu_go_* must not appear without a runtime source")
	}
}

// TestCollectRuntimeLiveScrape wires the real sampler the way bluserve
// does and validates the resulting exposition end to end.
func TestCollectRuntimeLiveScrape(t *testing.T) {
	runtime.GC()
	var text bytes.Buffer
	r := Collect(Sources{Monitor: monitor.New(), Runtime: SampleRuntime})
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(text.Bytes()); err != nil {
		t.Fatalf("live runtime scrape invalid: %v\n%s", err, text.String())
	}
	for _, want := range []string{"blu_go_goroutines ", "blu_go_gc_pause_seconds_count "} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("live scrape missing %q:\n%s", want, text.String())
		}
	}
}
