package metrics

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"blugpu/internal/explain"
	"blugpu/internal/gpu"
	"blugpu/internal/monitor"
	"blugpu/internal/sched"
	"blugpu/internal/vtime"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMetricsEndpoint(t *testing.T) {
	src := testSources(t)
	srv := httptest.NewServer(AdminMux(func() Sources { return src }))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("scraped exposition invalid: %v\n%s", err, body)
	}
	// The acceptance surface: kernels, transfers, scheduler, faults and
	// per-device memory must all be present in one scrape.
	for _, want := range []string{
		"blu_kernel_executions_total{kernel=\"grpby_k1\"} 2",
		"blu_transfer_bytes_total{direction=\"h2d\"} 1048576",
		"blu_sched_placements_total{result=\"ok\"} 1",
		"blu_faults_injected_total{site=\"kernel\"} 1",
		"blu_device_memory_total_bytes{device=\"0\"}",
		"blu_device_memory_used_bytes{device=\"0\"} 1048576",
		"blu_device_quarantined{device=\"1\"} 1",
		"blu_query_latency_seconds_bucket{query=\"bd-complex-1\",le=\"+Inf\"} 2",
		"blu_optimizer_decisions_total{decision=\"gpu\",reason=\"eligible\"} 2",
		"blu_optimizer_decisions_total{decision=\"cpu\",reason=\"groups<=T2\"} 1",
		"blu_kmv_relative_error_count 2",
		"blu_gpu_enabled 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	code, jsBody := get(t, srv, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json: %d", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(jsBody), &decoded); err != nil {
		t.Fatalf("metrics.json is not valid JSON: %v", err)
	}
	if _, ok := decoded["families"]; !ok {
		t.Fatal("metrics.json missing families")
	}
}

func TestHealthzStates(t *testing.T) {
	spec := vtime.TeslaK40()
	devices := []*gpu.Device{gpu.NewDevice(0, spec), gpu.NewDevice(1, spec)}
	s, err := sched.New(devices...)
	if err != nil {
		t.Fatal(err)
	}
	src := Sources{Monitor: monitor.New(), Sched: s, Devices: devices, GPUEnabled: true}
	srv := httptest.NewServer(AdminMux(func() Sources { return src }))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy fleet: code=%d body=%s", code, body)
	}

	for i := 0; i < sched.DefaultFailThreshold; i++ {
		s.ReportFailure(devices[0])
	}
	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"degraded"`) {
		t.Fatalf("one quarantined device: code=%d body=%s", code, body)
	}
	if !strings.Contains(body, `"quarantined":true`) {
		t.Fatalf("healthz must expose breaker state: %s", body)
	}

	for i := 0; i < sched.DefaultFailThreshold; i++ {
		s.ReportFailure(devices[1])
	}
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status":"unhealthy"`) {
		t.Fatalf("fully quarantined fleet: code=%d body=%s", code, body)
	}
}

func TestHealthzCPUOnly(t *testing.T) {
	src := Sources{Monitor: monitor.New()}
	srv := httptest.NewServer(AdminMux(func() Sources { return src }))
	defer srv.Close()
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("CPU-only engine must be ok: code=%d body=%s", code, body)
	}
	if !strings.Contains(body, `"gpu_enabled":false`) {
		t.Fatalf("want gpu_enabled false: %s", body)
	}
}

func TestDebugQueries(t *testing.T) {
	src := testSources(t)
	srv := httptest.NewServer(AdminMux(func() Sources { return src }))
	defer srv.Close()
	code, body := get(t, srv, "/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/queries: %d", code)
	}
	for _, want := range []string{"bd-complex-1", "rolap-07", "flame summary", "op:groupby"} {
		if !strings.Contains(body, want) {
			t.Errorf("debug/queries missing %q:\n%s", want, body)
		}
	}
}

func TestDebugExplain(t *testing.T) {
	src := testSources(t)
	src.Explain = func(sql string) (*explain.Report, error) {
		if sql != "SELECT 1" {
			return nil, errors.New("bad sql")
		}
		return &explain.Report{
			Schema: explain.ReportSchema, Query: "q1", Plan: "scan", Thresholds: "T1=1 T2=2 T3=3",
			Ops: []explain.OpReport{{Op: "scan", Attributed: true}},
		}, nil
	}
	srv := httptest.NewServer(AdminMux(func() Sources { return src }))
	defer srv.Close()

	code, body := get(t, srv, "/debug/explain?q="+url.QueryEscape("SELECT 1"))
	if code != http.StatusOK {
		t.Fatalf("GET /debug/explain: %d %s", code, body)
	}
	rep, err := explain.Decode([]byte(body))
	if err != nil {
		t.Fatalf("response is not a report: %v\n%s", err, body)
	}
	if rep.Query != "q1" || len(rep.Ops) != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}

	code, body = get(t, srv, "/debug/explain?format=text&q="+url.QueryEscape("SELECT 1"))
	if code != http.StatusOK || !strings.Contains(body, "EXPLAIN ANALYZE q1") {
		t.Fatalf("text format: code=%d body=%s", code, body)
	}

	if code, _ := get(t, srv, "/debug/explain"); code != http.StatusBadRequest {
		t.Fatalf("missing q must 400, got %d", code)
	}
	if code, _ := get(t, srv, "/debug/explain?q=bogus"); code != http.StatusBadRequest {
		t.Fatalf("explain error must 400, got %d", code)
	}

	// Without an Explain source the endpoint reports itself absent.
	bare := testSources(t)
	srv2 := httptest.NewServer(AdminMux(func() Sources { return bare }))
	defer srv2.Close()
	if code, _ := get(t, srv2, "/debug/explain?q=x"); code != http.StatusNotFound {
		t.Fatalf("no source must 404, got %d", code)
	}
}

func TestServeEphemeralPort(t *testing.T) {
	src := testSources(t)
	srv, ln, err := Serve("127.0.0.1:0", func() Sources { return src })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := ValidateExposition(body); err != nil {
		t.Fatal(err)
	}
}
