package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// snapshotLocked returns the families sorted by name and each family's
// series sorted by canonical label key. Caller holds r.mu.
func (r *Registry) snapshotLocked() []*family {
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series in canonical label-key order.
func (f *family) sortedSeries() []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	return out
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label set,
// histogram buckets ascending with a final +Inf bucket plus _sum and
// _count. Output is byte-deterministic for identical registry contents.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotLocked() {
		// A declared family with no series yet (e.g. no kernels have run)
		// renders nothing: metadata-only families would fail validation
		// and carry no information.
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.sortedSeries() {
			switch f.typ {
			case HistogramType:
				for _, b := range s.bucket {
					writeSample(bw, f.name+"_bucket", s.labels, L("le", formatFloat(b.UpperBound)), float64(b.CumCount))
				}
				writeSample(bw, f.name+"_bucket", s.labels, L("le", "+Inf"), float64(s.count))
				writeSample(bw, f.name+"_sum", s.labels, Label{}, s.value)
				writeSample(bw, f.name+"_count", s.labels, Label{}, float64(s.count))
			default:
				writeSample(bw, f.name, s.labels, Label{}, s.value)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one sample line. extra, when non-zero, is appended
// after the series labels (the histogram le label).
func writeSample(w io.Writer, name string, labels []Label, extra Label, value float64) {
	io.WriteString(w, name)
	if len(labels) > 0 || extra.Name != "" {
		io.WriteString(w, "{")
		first := true
		for _, l := range labels {
			if !first {
				io.WriteString(w, ",")
			}
			first = false
			fmt.Fprintf(w, `%s="%s"`, l.Name, escapeLabelValue(l.Value))
		}
		if extra.Name != "" {
			if !first {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, extra.Name, escapeLabelValue(extra.Value))
		}
		io.WriteString(w, "}")
	}
	fmt.Fprintf(w, " %s\n", formatFloat(value))
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline. The result is what goes between
// the quotes on a sample line.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value deterministically: integers
// without exponent or decimal point, everything else in Go's shortest
// 'g' form, infinities as +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WriteJSON renders the registry as one structured JSON object — the
// machine-readable twin of WriteText, used by /metrics.json and the
// blubench -metrics-json event log. Families, series and labels appear
// in the same canonical order as the text form, so the output is
// byte-deterministic too.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"families":[`)
	fi := 0
	for _, f := range r.snapshotLocked() {
		if len(f.series) == 0 {
			continue
		}
		if fi > 0 {
			bw.WriteByte(',')
		}
		fi++
		fmt.Fprintf(bw, `{"name":%q,"type":%q,"help":%q,"series":[`, f.name, f.typ, f.help)
		for si, s := range f.sortedSeries() {
			if si > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`{"labels":{`)
			for li, l := range s.labels {
				if li > 0 {
					bw.WriteByte(',')
				}
				fmt.Fprintf(bw, `%q:%q`, l.Name, l.Value)
			}
			bw.WriteString(`}`)
			switch f.typ {
			case HistogramType:
				fmt.Fprintf(bw, `,"sum":%s,"count":%d,"buckets":[`, jsonFloat(s.value), s.count)
				for bi, b := range s.bucket {
					if bi > 0 {
						bw.WriteByte(',')
					}
					fmt.Fprintf(bw, `{"le":%s,"count":%d}`, jsonFloat(b.UpperBound), b.CumCount)
				}
				bw.WriteString(`]`)
			default:
				fmt.Fprintf(bw, `,"value":%s`, jsonFloat(s.value))
			}
			bw.WriteString(`}`)
		}
		bw.WriteString(`]}`)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// jsonFloat renders a float as a JSON number (infinities, invalid in
// JSON, become strings).
func jsonFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Sprintf("%q", formatFloat(v))
	}
	return formatFloat(v)
}

// --- exposition validation (the check behind `make metrics-smoke`) ---

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	helpRe  = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe  = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	valueRe = regexp.MustCompile(`^[+-]?(Inf|NaN|[0-9].*|\.[0-9].*)$`)
)

// ValidateExposition checks that data is syntactically valid Prometheus
// text exposition format and structurally sane: every sample line
// parses (name, balanced quoted labels, float value), every sample
// belongs to a declared TYPE family (histogram samples may use the
// _bucket/_sum/_count suffixes and _bucket requires an le label),
// every histogram label set has a +Inf bucket, and no series repeats.
func ValidateExposition(data []byte) error {
	types := map[string]Type{}
	seen := map[string]bool{}
	histInf := map[string]bool{}    // histogram family+labels with a +Inf bucket
	histSeries := map[string]bool{} // histogram family+labels seen at all
	samples := 0
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := helpRe.FindStringSubmatch(line); m != nil {
				continue
			}
			if m := typeRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					return fmt.Errorf("metrics: line %d: duplicate TYPE for %s", lineNo, m[1])
				}
				types[m[1]] = Type(m[2])
				continue
			}
			if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
				return fmt.Errorf("metrics: line %d: malformed comment %q", lineNo, line)
			}
			continue // free-form comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		samples++
		fam, suffix := name, ""
		if types[fam] == "" {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, sfx)
				if base != name && types[base] == HistogramType {
					fam, suffix = base, sfx
					break
				}
			}
		}
		t, ok := types[fam]
		if !ok {
			return fmt.Errorf("metrics: line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		if t == HistogramType && suffix == "" {
			return fmt.Errorf("metrics: line %d: histogram %s sample must use _bucket/_sum/_count", lineNo, fam)
		}
		le, rest := splitLE(labels)
		if suffix == "_bucket" {
			if le == "" {
				return fmt.Errorf("metrics: line %d: %s_bucket without le label", lineNo, fam)
			}
			histKey := fam + "|" + rest
			histSeries[histKey] = true
			if le == "+Inf" {
				histInf[histKey] = true
			}
		}
		serKey := name + "|" + labels
		if seen[serKey] {
			return fmt.Errorf("metrics: line %d: duplicate series %s{%s}", lineNo, name, labels)
		}
		seen[serKey] = true
		_ = value
	}
	if samples == 0 {
		return fmt.Errorf("metrics: no samples")
	}
	for k := range histSeries {
		if !histInf[k] {
			return fmt.Errorf("metrics: histogram series %s missing le=\"+Inf\" bucket", strings.ReplaceAll(k, "|", "{")+"}")
		}
	}
	return nil
}

// parseSample splits one sample line into (name, canonical label text,
// value), validating each part.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		end, err := scanLabels(rest[brace+1:])
		if err != nil {
			return "", "", "", err
		}
		labels = rest[brace+1 : brace+1+end]
		rest = rest[brace+1+end+1:] // skip closing brace
	} else {
		if sp < 0 {
			return "", "", "", fmt.Errorf("sample %q missing value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !nameRe.MatchString(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	if !valueRe.MatchString(fields[0]) {
		return "", "", "", fmt.Errorf("invalid sample value %q", fields[0])
	}
	if _, ferr := strconv.ParseFloat(strings.Replace(fields[0], "Inf", "inf", 1), 64); ferr != nil {
		return "", "", "", fmt.Errorf("invalid sample value %q", fields[0])
	}
	return name, labels, fields[0], nil
}

// scanLabels validates `name="value",...` up to the closing brace of a
// label set and returns the index of that brace within s.
func scanLabels(s string) (int, error) {
	i := 0
	for {
		if i < len(s) && s[i] == '}' {
			return i, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set %q", s)
		}
		if !nameRe.MatchString(s[start:i]) {
			return 0, fmt.Errorf("invalid label name %q", s[start:i])
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("invalid escape \\%c in %q", s[i+1], s)
				}
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// splitLE extracts the le label from a canonical label text and returns
// (leValue, remaining label text with le removed) for histogram-series
// grouping.
func splitLE(labels string) (le, rest string) {
	if labels == "" {
		return "", ""
	}
	var kept []string
	for _, part := range splitLabelParts(labels) {
		if strings.HasPrefix(part, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`)
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ",")
}

// splitLabelParts splits canonical label text on commas outside quotes.
func splitLabelParts(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
