package metrics

import (
	"math"
	rtm "runtime/metrics"
)

// RuntimeHist is a cumulative snapshot of one runtime/metrics
// Float64Histogram: ascending bucket bounds in seconds (the +Inf
// bucket is folded into Count — the exposition synthesizes +Inf), the
// total observation count, and a midpoint-approximated sum (the
// runtime does not track exact sums; the approximation is good to one
// bucket width and only feeds the _sum series).
type RuntimeHist struct {
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// RuntimeStats is one sample of Go runtime telemetry: the live
// observability the modeled engine cannot fake. Sampled per scrape so
// /metrics reflects the process serving it.
type RuntimeStats struct {
	Goroutines   uint64 // /sched/goroutines:goroutines
	HeapBytes    uint64 // /memory/classes/heap/objects:bytes (live + dead, pre-GC)
	TotalBytes   uint64 // /memory/classes/total:bytes (all runtime-managed memory)
	GCCycles     uint64 // /gc/cycles/total:gc-cycles
	GCPause      RuntimeHist
	SchedLatency RuntimeHist
}

// gcPauseNames lists the GC stop-the-world pause metric under its
// current name first, then the pre-1.22 spelling as a fallback.
var gcPauseNames = []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}

// SampleRuntime reads the runtime/metrics surface into a RuntimeStats.
// Metrics the running toolchain does not export are left zero.
func SampleRuntime() *RuntimeStats {
	rt := &RuntimeStats{}
	samples := []rtm.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/memory/classes/total:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/sched/latencies:seconds"},
	}
	rtm.Read(samples)
	if samples[0].Value.Kind() == rtm.KindUint64 {
		rt.Goroutines = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == rtm.KindUint64 {
		rt.HeapBytes = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == rtm.KindUint64 {
		rt.TotalBytes = samples[2].Value.Uint64()
	}
	if samples[3].Value.Kind() == rtm.KindUint64 {
		rt.GCCycles = samples[3].Value.Uint64()
	}
	if samples[4].Value.Kind() == rtm.KindFloat64Histogram {
		rt.SchedLatency = convertRuntimeHist(samples[4].Value.Float64Histogram())
	}
	for _, name := range gcPauseNames {
		pause := []rtm.Sample{{Name: name}}
		rtm.Read(pause)
		if pause[0].Value.Kind() == rtm.KindFloat64Histogram {
			rt.GCPause = convertRuntimeHist(pause[0].Value.Float64Histogram())
			break
		}
	}
	return rt
}

// convertRuntimeHist turns a runtime Float64Histogram (per-bucket
// counts between Buckets[i] and Buckets[i+1], possibly ±Inf at the
// edges) into the cumulative form the registry takes. Empty buckets
// are dropped to keep the exposition compact — the runtime's latency
// histograms carry hundreds of mostly-empty buckets.
func convertRuntimeHist(h *rtm.Float64Histogram) RuntimeHist {
	var out RuntimeHist
	if h == nil {
		return out
	}
	var cum uint64
	for i, n := range h.Counts {
		cum += n
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if !math.IsInf(hi, 1) {
			out.Buckets = append(out.Buckets, Bucket{UpperBound: hi, CumCount: cum})
		}
		// Midpoint sum approximation; unbounded edges contribute their
		// finite bound.
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		out.Sum += mid * float64(n)
	}
	out.Count = cum
	return out
}

// collectRuntime emits the blu_go_* family from one runtime sample.
func collectRuntime(r *Registry, rt *RuntimeStats) {
	r.Gauge("blu_go_goroutines", "Live goroutines in the serving process.").With().Set(float64(rt.Goroutines))
	r.Gauge("blu_go_heap_objects_bytes", "Bytes of heap occupied by objects (live plus not-yet-swept).").With().Set(float64(rt.HeapBytes))
	r.Gauge("blu_go_memory_total_bytes", "All memory mapped by the Go runtime.").With().Set(float64(rt.TotalBytes))
	r.Counter("blu_go_gc_cycles_total", "Completed GC cycles.").With().AddUint(rt.GCCycles)
	if rt.GCPause.Count > 0 {
		r.Histogram("blu_go_gc_pause_seconds", "GC stop-the-world pause distribution (sum is midpoint-approximated).").
			With().SetCumulative(rt.GCPause.Buckets, rt.GCPause.Sum, rt.GCPause.Count)
	}
	if rt.SchedLatency.Count > 0 {
		r.Histogram("blu_go_sched_latency_seconds", "Goroutine scheduling latency: time runnable before running (sum is midpoint-approximated).").
			With().SetCumulative(rt.SchedLatency.Buckets, rt.SchedLatency.Sum, rt.SchedLatency.Count)
	}
}
