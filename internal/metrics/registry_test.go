package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterAccumulatesAndIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help").With(L("k", "v"))
	c.Add(2)
	c.Add(-5)
	c.AddUint(3)
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{k="v"} 5`) {
		t.Fatalf("want c_total 5, got:\n%s", b.String())
	}
}

func TestGaugeSet(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help").With()
	g.Set(1.5)
	g.Set(-2.25)
	var b bytes.Buffer
	r.WriteText(&b)
	if !strings.Contains(b.String(), "g -2.25\n") {
		t.Fatalf("want g -2.25, got:\n%s", b.String())
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help").With()
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(2)
	var b bytes.Buffer
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.5"} 2`,
		`h_seconds_bucket{le="2"} 3`,
		`h_seconds_bucket{le="+Inf"} 3`,
		`h_seconds_sum 3`,
		`h_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatalf("self-exposition invalid: %v", err)
	}
}

func TestHistogramSetCumulativeSortsBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help").With(L("x", "1"))
	h.SetCumulative([]Bucket{{UpperBound: 4, CumCount: 9}, {UpperBound: 1, CumCount: 3}}, 12.5, 9)
	var b bytes.Buffer
	r.WriteText(&b)
	out := b.String()
	i1 := strings.Index(out, `le="1"`)
	i4 := strings.Index(out, `le="4"`)
	if i1 < 0 || i4 < 0 || i1 > i4 {
		t.Fatalf("buckets not sorted ascending:\n%s", out)
	}
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestFamilyTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type redefinition")
		}
	}()
	r.Gauge("m", "h")
}

func TestLabelOrderIndependence(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	c.With(L("a", "1"), L("b", "2")).Add(1)
	c.With(L("b", "2"), L("a", "1")).Add(1)
	var b bytes.Buffer
	r.WriteText(&b)
	if !strings.Contains(b.String(), `c_total{a="1",b="2"} 2`) {
		t.Fatalf("label order should normalize to one series:\n%s", b.String())
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name:x9":   "ok_name:x9",
		"has space":    "has_space",
		"kernel-v2":    "kernel_v2",
		"9starts":      "_9starts",
		"":             "_",
		"uni·code":     "uni_code",
		"a\"quote\\nl": "a_quote_nl",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistryConcurrent drives counters, gauges and histograms from
// many goroutines while the text form renders — the race-detector
// target for this package.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := L("w", fmt.Sprint(w%4))
			for i := 0; i < 500; i++ {
				c.With(lbl).Add(1)
				g.With(lbl).Set(float64(i))
				h.With(lbl).Observe(float64(i % 7))
				if i%100 == 0 {
					var b bytes.Buffer
					if err := r.WriteText(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var b bytes.Buffer
	r.WriteText(&b)
	if !strings.Contains(b.String(), `c_total{w="0"} 1000`) {
		t.Fatalf("concurrent adds lost updates:\n%s", b.String())
	}
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyFamilyOmitted: declaring a family without recording any
// series must render nothing — metadata-only output fails validation and
// says nothing.
func TestEmptyFamilyOmitted(t *testing.T) {
	r := NewRegistry()
	r.Counter("declared_but_unused_total", "h")
	r.Counter("used_total", "h").With().Add(1)
	var b bytes.Buffer
	r.WriteText(&b)
	if strings.Contains(b.String(), "declared_but_unused_total") {
		t.Fatalf("empty family leaked into exposition:\n%s", b.String())
	}
	var js bytes.Buffer
	r.WriteJSON(&js)
	if strings.Contains(js.String(), "declared_but_unused_total") {
		t.Fatalf("empty family leaked into JSON:\n%s", js.String())
	}
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatal(err)
	}
}
