package metrics

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blugpu/internal/monitor"
	"blugpu/internal/prof"
)

// TestCollectProf locks the blu_prof_* exposition: per-(class, phase)
// wall/CPU/count series from a deterministically seeded accountant and
// the captor's zero-state bookkeeping.
func TestCollectProf(t *testing.T) {
	acct := prof.NewAccountant()
	acct.AddWall("interactive", "exec", 30*time.Millisecond)
	acct.AddWall("interactive", "exec", 10*time.Millisecond)
	acct.AddWall("reporting", "parse", 2*time.Millisecond)
	acct.AddCPU("interactive", "exec", 0.025)
	captor := prof.NewCaptor(acct, prof.Options{})

	var text bytes.Buffer
	r := Collect(Sources{Monitor: monitor.New(), Prof: acct, Captor: captor})
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(text.Bytes()); err != nil {
		t.Fatalf("prof exposition invalid: %v\n%s", err, text.String())
	}
	out := text.String()
	for _, want := range []string{
		`blu_prof_wall_seconds_total{class="interactive",phase="exec"} 0.04`,
		`blu_prof_wall_seconds_total{class="reporting",phase="parse"} 0.002`,
		`blu_prof_cpu_seconds_total{class="interactive",phase="exec"} 0.025`,
		`blu_prof_phases_total{class="interactive",phase="exec"} 2`,
		`blu_prof_phases_total{class="reporting",phase="parse"} 1`,
		`blu_prof_alloc_bytes_total{class="interactive",phase="exec"} 0`,
		`blu_prof_captures_total 0`,
		`blu_prof_capture_ring 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestCollectProfEmpty: an accountant with no recorded phases emits no
// blu_prof_* series (bare metadata would invalidate the exposition).
func TestCollectProfEmpty(t *testing.T) {
	var text bytes.Buffer
	r := Collect(Sources{Monitor: monitor.New(), Prof: prof.NewAccountant()})
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(text.Bytes()); err != nil {
		t.Fatalf("empty prof exposition invalid: %v\n%s", err, text.String())
	}
	if strings.Contains(text.String(), "blu_prof_wall_seconds_total") {
		t.Fatalf("empty accountant leaked series:\n%s", text.String())
	}
}

// TestDebugProfEndpoints drives /debug/prof/hotspots and
// /debug/prof/capture through the admin mux: 404 without a captor,
// a real capture window plus digest with one.
func TestDebugProfEndpoints(t *testing.T) {
	bare := httptest.NewServer(AdminMux(func() Sources {
		return Sources{Monitor: monitor.New()}
	}))
	defer bare.Close()
	if code, _ := get(t, bare, "/debug/prof/hotspots"); code != http.StatusNotFound {
		t.Fatalf("hotspots without captor: %d, want 404", code)
	}
	if code, _ := get(t, bare, "/debug/prof/capture"); code != http.StatusNotFound {
		t.Fatalf("capture without captor: %d, want 404", code)
	}

	acct := prof.NewAccountant()
	captor := prof.NewCaptor(acct, prof.Options{})
	srv := httptest.NewServer(AdminMux(func() Sources {
		return Sources{Monitor: monitor.New(), Prof: acct, Captor: captor}
	}))
	defer srv.Close()

	if code, body := get(t, srv, "/debug/prof/capture?window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad window: %d %q", code, body)
	}
	code, body := get(t, srv, "/debug/prof/capture?window=50ms")
	if code != http.StatusOK {
		t.Fatalf("capture: %d %q", code, body)
	}
	for _, want := range []string{`"seq"`, `"captures":1`, `"heap_bytes"`} {
		if !strings.Contains(body, want) {
			t.Errorf("capture body missing %s: %s", want, body)
		}
	}

	code, body = get(t, srv, "/debug/prof/hotspots")
	if code != http.StatusOK {
		t.Fatalf("hotspots: %d", code)
	}
	if !strings.HasPrefix(body, "prof hotspots: captures=1") {
		t.Fatalf("unexpected digest header: %q", body)
	}
}
