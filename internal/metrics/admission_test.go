package metrics

import (
	"strings"
	"testing"

	"blugpu/internal/gpu"
	"blugpu/internal/monitor"
	"blugpu/internal/sched"
	"blugpu/internal/vtime"
)

func TestHealthStatus(t *testing.T) {
	if got := HealthStatus(nil); got != HealthOK {
		t.Fatalf("nil scheduler: %q, want ok", got)
	}
	spec := vtime.TeslaK40()
	devices := []*gpu.Device{gpu.NewDevice(0, spec), gpu.NewDevice(1, spec)}
	s, err := sched.New(devices...)
	if err != nil {
		t.Fatal(err)
	}
	if got := HealthStatus(s); got != HealthOK {
		t.Fatalf("healthy fleet: %q, want ok", got)
	}
	for i := 0; i < sched.DefaultFailThreshold; i++ {
		s.ReportFailure(devices[0])
	}
	if got := HealthStatus(s); got != HealthDegraded {
		t.Fatalf("one breaker open: %q, want degraded", got)
	}
	for i := 0; i < sched.DefaultFailThreshold; i++ {
		s.ReportFailure(devices[1])
	}
	if got := HealthStatus(s); got != HealthUnhealthy {
		t.Fatalf("all breakers open: %q, want unhealthy", got)
	}
}

func TestCollectAdmission(t *testing.T) {
	var wait monitor.Hist
	wait.Observe(2 * vtime.Millisecond)
	wait.Observe(8 * vtime.Millisecond)
	snap := &AdmissionSnapshot{
		QueueDepth: 3, QueueCapacity: 16, EffectiveCap: 8, Draining: true,
		Sessions: 5, Inflight: 2,
		Submitted: 100, Admitted: 80, Shed: 12, TimedOut: 5, Drained: 3,
		ExecErrors: 2, PlaceRetries: 7,
		Classes: []ClassAdmissionSnapshot{
			{
				Class: "simple", Active: 2, Limit: 4, Queued: 1,
				Admitted: 60, Shed: 8, TimedOut: 3, Drained: 1,
				WaitBuckets: wait.Buckets(), WaitSum: wait.Total().Seconds(), WaitCount: wait.Count(),
			},
			{Class: "complex", Limit: 1, Admitted: 20, Shed: 4, TimedOut: 2, Drained: 2},
		},
	}
	src := Sources{Monitor: monitor.New(), Admission: func() *AdmissionSnapshot { return snap }}
	var sb strings.Builder
	Collect(src).WriteText(&sb)
	body := sb.String()
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("admission exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`blu_serve_queue_depth 3`,
		`blu_serve_queue_capacity 8`,
		`blu_serve_draining 1`,
		`blu_serve_sessions 5`,
		`blu_serve_inflight 2`,
		`blu_serve_submitted_total 100`,
		`blu_serve_queries_total{outcome="admitted"} 80`,
		`blu_serve_queries_total{outcome="shed"} 12`,
		`blu_serve_queries_total{outcome="timed_out"} 5`,
		`blu_serve_queries_total{outcome="drained"} 3`,
		`blu_serve_exec_errors_total 2`,
		`blu_serve_place_retries_total 7`,
		`blu_serve_class_active{class="simple"} 2`,
		`blu_serve_class_limit{class="complex"} 1`,
		`blu_serve_class_queued{class="simple"} 1`,
		`blu_serve_class_queries_total{class="simple",outcome="admitted"} 60`,
		`blu_serve_class_queries_total{class="complex",outcome="drained"} 2`,
		`blu_serve_wait_seconds_count{class="simple"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("admission scrape missing %q", want)
		}
	}
	// The outcome partition must reconcile in the exposition itself.
	if snap.Admitted+snap.Shed+snap.TimedOut+snap.Drained != snap.Submitted {
		t.Fatal("test snapshot must partition submitted")
	}

	// Without an admission source the family is absent entirely, keeping
	// the existing goldens byte-stable.
	var bare strings.Builder
	Collect(Sources{Monitor: monitor.New()}).WriteText(&bare)
	if strings.Contains(bare.String(), "blu_serve_") {
		t.Fatal("blu_serve_* must not appear without an admission source")
	}
}
