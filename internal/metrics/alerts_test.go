package metrics

import (
	"strings"
	"testing"
)

func obsSnap() *ObsSnapshot {
	return &ObsSnapshot{
		Scrapes:           12,
		Samples:           480,
		Series:            40,
		DroppedSeries:     1,
		ScrapeWallSeconds: 0.0042,
		StepSeconds:       5,
		RetentionSeconds:  900,
		Alerts: AlertsSnapshot{
			Rules:       3,
			Firing:      1,
			Pending:     1,
			PagesFiring: 1,
			States: []AlertState{
				{Name: "AllBreakersOpen", Severity: SeverityPage, State: AlertFiring, Value: 2},
				{Name: "HighSLOBurn", Severity: SeverityWarn, State: AlertPending, Value: 3.5},
				{Name: "ShedSpike", Severity: SeverityInfo, State: AlertInactive},
			},
			TransitionCounts: []AlertTransitionCount{
				{Alert: "AllBreakersOpen", To: "firing", Count: 1},
				{Alert: "AllBreakersOpen", To: "pending", Count: 1},
			},
		},
	}
}

func TestCollectObs(t *testing.T) {
	snap := obsSnap()
	r := Collect(Sources{Obs: func() *ObsSnapshot { return snap }})
	var b strings.Builder
	r.WriteText(&b)
	text := b.String()
	for _, want := range []string{
		`blu_obsd_scrapes_total 12`,
		`blu_obsd_samples_total 480`,
		`blu_obsd_series 40`,
		`blu_obsd_dropped_series_total 1`,
		`blu_obsd_step_seconds 5`,
		`blu_obsd_retention_seconds 900`,
		`blu_alerts_rules 3`,
		`blu_alerts_firing{alert="AllBreakersOpen",severity="page"} 1`,
		`blu_alerts_firing{alert="HighSLOBurn",severity="warn"} 0`,
		`blu_alerts_pending{alert="HighSLOBurn",severity="warn"} 1`,
		`blu_alerts_pending{alert="ShedSpike",severity="info"} 0`,
		`blu_alerts_transitions_total{alert="AllBreakersOpen",to="firing"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := ValidateExposition([]byte(text)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestCollectObsNoRules(t *testing.T) {
	snap := &ObsSnapshot{Scrapes: 1, StepSeconds: 5, RetentionSeconds: 900}
	r := Collect(Sources{Obs: func() *ObsSnapshot { return snap }})
	var b strings.Builder
	r.WriteText(&b)
	if strings.Contains(b.String(), "blu_alerts_firing") {
		t.Fatalf("no-rules snapshot must not emit per-alert series")
	}
	if !strings.Contains(b.String(), "blu_alerts_rules 0") {
		t.Fatalf("rules gauge should still report 0")
	}
}

func TestHealthStatusWith(t *testing.T) {
	// nil scheduler, no pages firing: ok (CPU path serves).
	if got := HealthStatusWith(nil, 0); got != HealthOK {
		t.Fatalf("got %q, want ok", got)
	}
	// any firing page alert forces unhealthy regardless of fleet state.
	if got := HealthStatusWith(nil, 1); got != HealthUnhealthy {
		t.Fatalf("got %q, want unhealthy", got)
	}
}
