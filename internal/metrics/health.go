package metrics

import "blugpu/internal/sched"

// Fleet health statuses shared by /healthz and the serving layer's load
// shedder, so load balancers and admission control degrade on the same
// signal.
const (
	HealthOK        = "ok"        // every breaker closed, or no GPU fleet (CPU path serves)
	HealthDegraded  = "degraded"  // some devices quarantined
	HealthUnhealthy = "unhealthy" // every device quarantined → HTTP 503
)

// HealthStatus classifies the scheduler's breaker state. A nil scheduler
// (CPU-only engine) is HealthOK: the CPU path serves every query.
func HealthStatus(s *sched.Scheduler) string {
	if s == nil {
		return HealthOK
	}
	health := s.Health()
	quarantined := 0
	for _, h := range health {
		if h.Quarantined {
			quarantined++
		}
	}
	switch {
	case quarantined == len(health) && quarantined > 0:
		return HealthUnhealthy
	case quarantined > 0:
		return HealthDegraded
	default:
		return HealthOK
	}
}
