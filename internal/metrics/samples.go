package metrics

// Sample is one flattened sample point: the structured twin of a text
// exposition sample line. Histograms flatten exactly as WriteText
// renders them — per-bucket <name>_bucket series with an le label
// (including the +Inf bucket), plus <name>_sum and <name>_count — so a
// consumer storing Samples over time holds the same series a Prometheus
// server scraping /metrics would.
type Sample struct {
	Name   string
	Labels []Label // sorted by name; histogram buckets carry le last
	Value  float64
}

// Samples flattens the registry into sample points in the same
// deterministic order as the text exposition: families sorted by name,
// series by canonical label key, buckets ascending. internal/obsd's
// self-scraper is the consumer — every Collect snapshot becomes one
// column of ring-buffer history.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, f := range r.snapshotLocked() {
		if len(f.series) == 0 {
			continue
		}
		for _, s := range f.sortedSeries() {
			switch f.typ {
			case HistogramType:
				for _, b := range s.bucket {
					out = append(out, Sample{
						Name:   f.name + "_bucket",
						Labels: appendLabel(s.labels, L("le", formatFloat(b.UpperBound))),
						Value:  float64(b.CumCount),
					})
				}
				out = append(out, Sample{
					Name:   f.name + "_bucket",
					Labels: appendLabel(s.labels, L("le", "+Inf")),
					Value:  float64(s.count),
				})
				out = append(out, Sample{Name: f.name + "_sum", Labels: s.labels, Value: s.value})
				out = append(out, Sample{Name: f.name + "_count", Labels: s.labels, Value: float64(s.count)})
			default:
				out = append(out, Sample{Name: f.name, Labels: s.labels, Value: s.value})
			}
		}
	}
	return out
}

// appendLabel copies labels and appends one more, so flattened bucket
// samples never alias a series' own label slice.
func appendLabel(labels []Label, l Label) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, l)
}
