package metrics

import (
	"fmt"
	"strings"
	"testing"
)

func sampleKey(s Sample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteString("{")
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteString("}")
	return b.String()
}

func TestSamplesFlattening(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last", "sorted after").With().Add(3)
	r.Gauge("aa_first", "sorted before").With(L("b", "2"), L("a", "1")).Set(7)
	h := r.Histogram("mid_hist", "a histogram").With(L("class", "simple"))
	h.SetCumulative([]Bucket{{UpperBound: 0.1, CumCount: 2}, {UpperBound: 1, CumCount: 5}}, 2.5, 6)

	got := r.Samples()
	want := []struct {
		key string
		val float64
	}{
		{`aa_first{a="1",b="2"}`, 7},
		{`mid_hist_bucket{class="simple",le="0.1"}`, 2},
		{`mid_hist_bucket{class="simple",le="1"}`, 5},
		{`mid_hist_bucket{class="simple",le="+Inf"}`, 6},
		{`mid_hist_sum{class="simple"}`, 2.5},
		{`mid_hist_count{class="simple"}`, 6},
		{`zz_last{}`, 3},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if k := sampleKey(got[i]); k != w.key || got[i].Value != w.val {
			t.Errorf("sample %d: got %s=%v, want %s=%v", i, k, got[i].Value, w.key, w.val)
		}
	}
}

func TestSamplesDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		for i := 0; i < 5; i++ {
			r.Counter("c", "h").With(L("i", fmt.Sprint(i))).Add(float64(i))
		}
		return r
	}
	a, b := build().Samples(), build().Samples()
	if len(a) != len(b) {
		t.Fatalf("len mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if sampleKey(a[i]) != sampleKey(b[i]) || a[i].Value != b[i].Value {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Bucket samples must not alias the series' own label slice: mutating a
// returned bucket label set must not leak into the sum/count samples.
func TestSamplesNoLabelAliasing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help").With(L("k", "v"))
	h.SetCumulative([]Bucket{{UpperBound: 1, CumCount: 1}}, 1, 1)
	got := r.Samples()
	// got[0] is h_bucket{k,le}; mutate its first label.
	got[0].Labels[0] = L("k", "MUTATED")
	again := r.Samples()
	if again[2].Labels[0].Value != "v" || again[3].Labels[0].Value != "v" {
		t.Fatalf("label mutation leaked into registry: %v", again)
	}
}
