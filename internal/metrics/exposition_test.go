package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blugpu/internal/gpu"
	"blugpu/internal/monitor"
	"blugpu/internal/sched"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSources builds a fully deterministic source set covering every
// collector path: kernels, evaluators, queries, transfers,
// reservations, faults, retries, fallbacks, breaker state, memory
// samples, scheduler health and a traced span.
func testSources(t *testing.T) Sources {
	t.Helper()
	m := monitor.New()
	for i, k := range []struct {
		name string
		d    vtime.Duration
	}{
		{"grpby_k1", 2 * vtime.Millisecond},
		{"grpby_k1", 3 * vtime.Millisecond},
		{"grpby_k2", 500 * vtime.Microsecond},
		{"radix_partition", 1 * vtime.Millisecond},
	} {
		m.RecordGPUEvent(gpu.Event{Kind: gpu.EventKernel, Name: k.name, Modeled: k.d, Device: i % 2})
	}
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferH2D, Bytes: 1 << 20, Modeled: 100 * vtime.Microsecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferD2H, Bytes: 1 << 18, Modeled: 40 * vtime.Microsecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserve})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserve})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserveFail, Bytes: 1 << 24})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventFault, Name: "kernel"})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventFault, Name: "h2d"})
	m.RecordEvaluator("LCOG", 4096, 250*vtime.Microsecond)
	m.RecordEvaluator("HASH", 4096, 700*vtime.Microsecond)
	m.RecordQuery("bd-complex-1", 4*vtime.Millisecond, true)
	m.RecordQuery("bd-complex-1", 5*vtime.Millisecond, false)
	m.RecordQuery("rolap-07", 2*vtime.Millisecond, true)
	m.RecordGPURetry("place", true)
	m.RecordFallback("groupby", false)
	m.RecordBreaker(1, true)
	m.RecordDecision("gpu", "eligible")
	m.RecordDecision("gpu", "eligible")
	m.RecordDecision("cpu", "groups<=T2")
	m.RecordKMVError(0.02)
	m.RecordKMVError(0.10)
	m.RecordFusedChain(1<<20, 1<<19)
	m.RecordFusedChain(1<<21, 0)
	m.RecordMemSample(0, vtime.Time(0.001), 1<<20, 1<<30)
	m.RecordMemSample(0, vtime.Time(0.002), 3<<20, 1<<30)

	spec := vtime.TeslaK40()
	devices := []*gpu.Device{gpu.NewDevice(0, spec), gpu.NewDevice(1, spec)}
	s, err := sched.New(devices...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TryPlace(1 << 20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sched.DefaultFailThreshold; i++ {
		s.ReportFailure(devices[1])
	}

	tr := trace.New()
	tc := tr.StartQuery("bd-complex-1", 0)
	op := tc.Begin("op", "groupby", 0)
	op.End(vtime.Time(0.002), trace.Int("rows", 128))
	tc.End(vtime.Time(0.004))

	return Sources{Monitor: m, Sched: s, Devices: devices, Tracer: tr, GPUEnabled: true}
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test ./internal/metrics -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (run -update after reviewing)\n--- got ---\n%s", name, got)
	}
}

// TestExpositionGolden locks the full deterministic exposition —
// ordering, escaping, formatting — behind golden files for both the
// text and the JSON form.
func TestExpositionGolden(t *testing.T) {
	r := Collect(testSources(t))
	var text, js bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(text.Bytes()); err != nil {
		t.Fatalf("golden exposition must self-validate: %v", err)
	}
	golden(t, "exposition_golden.txt", text.Bytes())
	golden(t, "metrics_golden.json", js.Bytes())
}

// TestCollectDeterministic re-collects the same sources and demands
// byte-identical output — the property the scrape diffing and the
// golden tests stand on.
func TestCollectDeterministic(t *testing.T) {
	src := testSources(t)
	var a, b bytes.Buffer
	Collect(src).WriteText(&a)
	Collect(src).WriteText(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two collections of identical state rendered differently")
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	c.With(L("k", "plain")).Add(1)
	c.With(L("k", `back\slash`)).Add(1)
	c.With(L("k", `"quoted"`)).Add(1)
	c.With(L("k", "new\nline")).Add(1)
	c.With(L("k", "uni·code")).Add(1)
	var b bytes.Buffer
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`c_total{k="plain"} 1`,
		`c_total{k="back\\slash"} 1`,
		`c_total{k="\"quoted\""} 1`,
		`c_total{k="new\nline"} 1`,
		`c_total{k="uni·code"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// 1 HELP + 1 TYPE + 5 samples: a raw newline leaking into a label
	// value would add a line.
	if got := strings.Count(out, "\n"); got != 7 {
		t.Fatalf("want 7 lines, got %d — raw newline leaked?\n%s", got, out)
	}
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatalf("escaped exposition must validate: %v", err)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "line one\nline two \\ backslash").With().Add(1)
	var b bytes.Buffer
	r.WriteText(&b)
	if !strings.Contains(b.String(), `# HELP c_total line one\nline two \\ backslash`) {
		t.Fatalf("HELP not escaped:\n%s", b.String())
	}
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestMetricNameSanitizedInExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird name-total", "h").With(L("bad label", "v")).Add(1)
	var b bytes.Buffer
	r.WriteText(&b)
	if !strings.Contains(b.String(), `weird_name_total{bad_label="v"} 1`) {
		t.Fatalf("names not sanitized:\n%s", b.String())
	}
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no samples":        "# TYPE a counter\n",
		"missing TYPE":      "a_total 1\n",
		"bad name":          "# TYPE 9bad counter\n9bad 1\n",
		"bad value":         "# TYPE a counter\na value\n",
		"unbalanced quote":  "# TYPE a counter\na{k=\"v} 1\n",
		"unquoted label":    "# TYPE a counter\na{k=v} 1\n",
		"duplicate series":  "# TYPE a counter\na{k=\"v\"} 1\na{k=\"v\"} 2\n",
		"duplicate TYPE":    "# TYPE a counter\n# TYPE a counter\na 1\n",
		"hist bare sample":  "# TYPE h histogram\nh 1\n",
		"bucket without le": "# TYPE h histogram\nh_bucket{k=\"v\"} 1\nh_sum 1\nh_count 1\n",
		"hist missing +Inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"bad escape":        "# TYPE a counter\na{k=\"\\x\"} 1\n",
	}
	for name, data := range cases {
		if err := ValidateExposition([]byte(data)); err == nil {
			t.Errorf("%s: expected validation error for:\n%s", name, data)
		}
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	ok := "# arbitrary comment\n" +
		"# HELP a_total help text\n" +
		"# TYPE a_total counter\n" +
		`a_total{k="v,with=punct"} 1` + "\n" +
		"# TYPE g gauge\ng -2.5e-3\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.5"} 1` + "\n" +
		`h_bucket{le="+Inf"} 2` + "\n" +
		"h_sum 1.5\nh_count 2\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

// TestCollectIdleEngine: a scrape of a freshly booted engine — no
// queries, no kernels, no devices — must still be a valid exposition.
// Every per-name family is empty at that point and must be omitted
// rather than emitted as bare metadata.
func TestCollectIdleEngine(t *testing.T) {
	var text bytes.Buffer
	if err := Collect(Sources{Monitor: monitor.New()}).WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(text.Bytes()); err != nil {
		t.Fatalf("idle-engine scrape invalid: %v\n%s", err, text.String())
	}
	if !strings.Contains(text.String(), "blu_gpu_enabled 0") {
		t.Fatalf("idle scrape must still report gpu_enabled:\n%s", text.String())
	}
}
