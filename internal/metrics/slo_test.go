package metrics

import (
	"bytes"
	"strings"
	"testing"

	"blugpu/internal/monitor"
	"blugpu/internal/vtime"
)

func TestSLOBreaches(t *testing.T) {
	buckets := []monitor.HistBucket{
		{UpperBound: 10 * vtime.Millisecond, CumCount: 5},
		{UpperBound: 100 * vtime.Millisecond, CumCount: 8},
	}
	for _, tc := range []struct {
		name      string
		threshold float64
		want      uint64
	}{
		// Threshold between the bounds: the 100ms bound is the boundary,
		// so 10-8 = 2 observations breach.
		{"between-bounds", 0.05, 2},
		// Threshold at/below the first bound: everything over 10ms counts.
		{"first-bound", 0.005, 5},
		{"exact-bound", 0.01, 5},
		// Threshold above every bound: bucket granularity cannot see a
		// breach (conservative zero).
		{"above-all", 1.0, 0},
	} {
		if got := sloBreaches(buckets, 10, tc.threshold); got != tc.want {
			t.Fatalf("%s: breaches = %d, want %d", tc.name, got, tc.want)
		}
	}
	if got := sloBreaches(nil, 10, 0.05); got != 0 {
		t.Fatalf("empty buckets: breaches = %d, want 0", got)
	}
}

// sloTestSnapshot: two classes with SLO parameters and wall-latency
// distributions, one class without an objective (no blu_slo_* series).
func sloTestSnapshot() *AdmissionSnapshot {
	return &AdmissionSnapshot{
		Submitted: 130, Admitted: 130,
		Classes: []ClassAdmissionSnapshot{
			{
				// 100 requests, 2 over the 50ms threshold → error rate
				// 0.02, burn rate 0.02/(1-0.99) = 2.0.
				Class: "simple", Limit: 4, Admitted: 100,
				WallBuckets: []monitor.HistBucket{
					{UpperBound: 16 * vtime.Millisecond, CumCount: 90},
					{UpperBound: 64 * vtime.Millisecond, CumCount: 98},
					{UpperBound: 256 * vtime.Millisecond, CumCount: 100},
				},
				WallSum: 1.5, WallCount: 100,
				SLOThreshold: 0.064, SLOObjective: 0.99,
			},
			{
				// 30 requests, all within threshold → burn rate 0.
				Class: "complex", Limit: 1, Admitted: 30,
				WallBuckets: []monitor.HistBucket{
					{UpperBound: 512 * vtime.Millisecond, CumCount: 30},
				},
				WallSum: 6.0, WallCount: 30,
				SLOThreshold: 1.0, SLOObjective: 0.90,
			},
			{
				// No objective → measured but not SLO-tracked.
				Class: "intermediate", Limit: 2,
				WallBuckets: []monitor.HistBucket{{UpperBound: 32 * vtime.Millisecond, CumCount: 4}},
				WallSum:     0.05, WallCount: 4,
			},
		},
	}
}

// TestCollectSLOGolden locks the blu_slo_* and blu_serve_wall_seconds
// exposition behind a golden file.
func TestCollectSLOGolden(t *testing.T) {
	snap := sloTestSnapshot()
	var text bytes.Buffer
	r := Collect(Sources{Monitor: monitor.New(), Admission: func() *AdmissionSnapshot { return snap }})
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(text.Bytes()); err != nil {
		t.Fatalf("SLO exposition invalid: %v\n%s", err, text.String())
	}
	golden(t, "slo_golden.txt", text.Bytes())
	body := text.String()
	for _, want := range []string{
		`blu_slo_threshold_seconds{class="simple"} 0.064`,
		`blu_slo_objective{class="simple"} 0.99`,
		`blu_slo_requests_total{class="simple"} 100`,
		`blu_slo_breaches_total{class="simple"} 2`,
		`blu_slo_error_rate{class="simple"} 0.02`,
		// 0.02/(1-0.99) in float64: ≈2, rendered exactly as computed.
		`blu_slo_burn_rate{class="simple"} 1.9999999999999982`,
		`blu_slo_burn_rate{class="complex"} 0`,
		`blu_serve_wall_seconds_count{class="simple"} 100`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("SLO scrape missing %q in:\n%s", want, body)
		}
	}
	// The class without an objective must not get SLO series.
	if strings.Contains(body, `blu_slo_objective{class="intermediate"}`) {
		t.Fatal("intermediate has no objective and must not be SLO-tracked")
	}
	// Wall histograms still export for it (measurement without targets).
	if !strings.Contains(body, `blu_serve_wall_seconds_count{class="intermediate"} 4`) {
		t.Fatal("wall histogram must export even without an objective")
	}
}
