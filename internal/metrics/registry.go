// Package metrics is the exposition half of the engine's observability
// stack: a typed metric registry (counters, gauges, label-set
// histograms) whose contents render as deterministic Prometheus text
// exposition format and as a structured JSON snapshot, plus the admin
// HTTP surface (/metrics, /healthz, /debug/queries) that bluserve,
// blubench and blushell mount.
//
// internal/monitor aggregates telemetry inside the process; this
// package is how it gets out. Collect snapshots a monitor, a scheduler
// and a device fleet into a fresh Registry on every scrape, so the
// registry itself carries no long-lived state and every render is a
// pure function of the sources — the property the golden-file tests
// and the benchdiff regression gate rely on.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Type is a metric family's type, named after the Prometheus kinds.
type Type string

// Metric family types.
const (
	CounterType   Type = "counter"
	GaugeType     Type = "gauge"
	HistogramType Type = "histogram"
)

// Label is one name=value label pair.
type Label struct {
	Name  string
	Value string
}

// L builds a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Bucket is one cumulative histogram bucket: the count of observations
// at or below UpperBound (seconds).
type Bucket struct {
	UpperBound float64
	CumCount   uint64
}

// series is one labeled time series within a family.
type series struct {
	labels []Label // sorted by name
	value  float64 // counter/gauge value; histogram sum
	count  uint64  // histogram observation count
	bucket []Bucket
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	typ    Type
	series map[string]*series // keyed by canonical label encoding
}

// Registry holds metric families. Safe for concurrent use; renders
// deterministically (families sorted by name, series by label set,
// buckets by bound).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family. A name reused
// with a different type panics: that is a programming error, not data.
func (r *Registry) family(name, help string, typ Type) *family {
	name = SanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: family %q redefined as %s (was %s)", name, typ, f.typ))
	}
	return f
}

// seriesFor returns (creating if needed) the series with the given
// labels, which are normalized: names sanitized, pairs sorted.
func (f *family) seriesFor(labels []Label) *series {
	norm := normalizeLabels(labels)
	key := labelKey(norm)
	s := f.series[key]
	if s == nil {
		s = &series{labels: norm}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically accumulating series handle.
type Counter struct {
	f *Counter0
	s *series
}

// Counter0 is a counter family; With selects a labeled series.
type Counter0 struct {
	r *Registry
	f *family
}

// Counter declares (or fetches) a counter family.
func (r *Registry) Counter(name, help string) *Counter0 {
	return &Counter0{r: r, f: r.family(name, help, CounterType)}
}

// With returns the series for the given labels.
func (c *Counter0) With(labels ...Label) *Counter {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return &Counter{f: c, s: c.f.seriesFor(labels)}
}

// Add accumulates v; negative deltas are ignored (counters only rise).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.f.r.mu.Lock()
	c.s.value += v
	c.f.r.mu.Unlock()
}

// AddUint accumulates an unsigned count.
func (c *Counter) AddUint(v uint64) { c.Add(float64(v)) }

// Gauge0 is a gauge family; With selects a labeled series.
type Gauge0 struct {
	r *Registry
	f *family
}

// Gauge is a settable series handle.
type Gauge struct {
	f *Gauge0
	s *series
}

// Gauge declares (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string) *Gauge0 {
	return &Gauge0{r: r, f: r.family(name, help, GaugeType)}
}

// With returns the series for the given labels.
func (g *Gauge0) With(labels ...Label) *Gauge {
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return &Gauge{f: g, s: g.f.seriesFor(labels)}
}

// Set assigns the gauge value.
func (g *Gauge) Set(v float64) {
	g.f.r.mu.Lock()
	g.s.value = v
	g.f.r.mu.Unlock()
}

// Histogram0 is a histogram family; With selects a labeled series.
type Histogram0 struct {
	r *Registry
	f *family
}

// Histogram is a labeled histogram series handle.
type Histogram struct {
	f *Histogram0
	s *series
}

// Histogram declares (or fetches) a histogram family.
func (r *Registry) Histogram(name, help string) *Histogram0 {
	return &Histogram0{r: r, f: r.family(name, help, HistogramType)}
}

// With returns the series for the given labels.
func (h *Histogram0) With(labels ...Label) *Histogram {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return &Histogram{f: h, s: h.f.seriesFor(labels)}
}

// SetCumulative installs a pre-aggregated distribution wholesale:
// cumulative buckets (ascending bounds, non-decreasing counts), the sum
// of all observations in seconds, and the observation count. This is
// how monitor.Hist snapshots land here without re-observing samples.
func (h *Histogram) SetCumulative(buckets []Bucket, sum float64, count uint64) {
	h.f.r.mu.Lock()
	defer h.f.r.mu.Unlock()
	h.s.bucket = append([]Bucket(nil), buckets...)
	sort.Slice(h.s.bucket, func(i, j int) bool { return h.s.bucket[i].UpperBound < h.s.bucket[j].UpperBound })
	h.s.value = sum
	h.s.count = count
}

// Observe records one sample directly (for callers without a
// pre-aggregated source); the bucket bound is the sample itself, merged
// into an existing equal bound if present.
func (h *Histogram) Observe(v float64) {
	h.f.r.mu.Lock()
	defer h.f.r.mu.Unlock()
	h.s.value += v
	h.s.count++
	i := sort.Search(len(h.s.bucket), func(i int) bool { return h.s.bucket[i].UpperBound >= v })
	if i == len(h.s.bucket) || h.s.bucket[i].UpperBound != v {
		// A new bound inherits the cumulative count below it.
		var below uint64
		if i > 0 {
			below = h.s.bucket[i-1].CumCount
		}
		h.s.bucket = append(h.s.bucket, Bucket{})
		copy(h.s.bucket[i+1:], h.s.bucket[i:])
		h.s.bucket[i] = Bucket{UpperBound: v, CumCount: below}
	}
	// Every bucket at or above v gains the observation (cumulative).
	for ; i < len(h.s.bucket); i++ {
		h.s.bucket[i].CumCount++
	}
}

// SanitizeName maps s onto the Prometheus metric/label name alphabet
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid rune with '_' and
// prefixing '_' when the first rune would be invalid. Empty input
// becomes "_".
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// normalizeLabels sanitizes names and sorts pairs by name (then value,
// so duplicate names stay deterministic rather than undefined).
func normalizeLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{Name: SanitizeName(l.Name), Value: l.Value}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// labelKey canonically encodes a normalized label set.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte(',')
	}
	return b.String()
}
