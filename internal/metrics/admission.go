package metrics

import "blugpu/internal/monitor"

// AdmissionSnapshot is a point-in-time view of the serving layer's
// admission-control state. The types live here (not in internal/serve)
// so the collector can consume them without importing the serve package;
// serve imports metrics for the shared health signal already.
//
// The four outcome counters partition Submitted exactly:
//
//	Submitted == Admitted + Shed + TimedOut + Drained + in-flight/queued
//
// with the residue being work not yet resolved at snapshot time. A
// drained server has residue zero — the double-entry reconciliation the
// saturation tests and serve-smoke assert.
type AdmissionSnapshot struct {
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"` // configured bound
	EffectiveCap  int  `json:"effective_capacity"`
	Draining      bool `json:"draining"`
	Sessions      int  `json:"sessions"`
	Inflight      int  `json:"inflight"`

	Submitted    uint64 `json:"submitted"`
	Admitted     uint64 `json:"admitted"`
	Shed         uint64 `json:"shed"`
	TimedOut     uint64 `json:"timed_out"`
	Drained      uint64 `json:"drained"`
	ExecErrors   uint64 `json:"exec_errors"` // subset of Admitted that failed in the engine
	PlaceRetries uint64 `json:"place_retries"`
	SlowQueries  uint64 `json:"slow_queries"` // resolved over the slow-query threshold

	Classes []ClassAdmissionSnapshot `json:"classes"`

	// Recent lists the last resolved submissions, newest first — the
	// request-ID + queue-wait join surface /debug/serve and
	// /debug/queries render.
	Recent []RecentRequest `json:"recent,omitempty"`
}

// RecentRequest is one resolved submission in the recent-request ring.
type RecentRequest struct {
	RequestID string  `json:"request_id"`
	Query     string  `json:"query,omitempty"` // resolved name; empty for refused submissions
	Session   string  `json:"session,omitempty"`
	Class     string  `json:"class"`
	Outcome   string  `json:"outcome"`
	WaitMs    float64 `json:"queue_wait_ms"`
	TotalMs   float64 `json:"total_ms"`
	Slow      bool    `json:"slow,omitempty"`
}

// ClassAdmissionSnapshot is one user class's admission state.
type ClassAdmissionSnapshot struct {
	Class    string `json:"class"`
	Active   int    `json:"active"`
	Limit    int    `json:"limit"`
	Queued   int    `json:"queued"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	TimedOut uint64 `json:"timed_out"`
	Drained  uint64 `json:"drained"`

	// Queue-wait distribution (admission wait only, not execution).
	WaitBuckets []monitor.HistBucket `json:"-"`
	WaitSum     float64              `json:"wait_sum_seconds"`
	WaitCount   uint64               `json:"wait_count"`

	// End-to-end wall-latency distribution (submit→resolve) and the
	// class's SLO parameters; the blu_slo_* burn-rate gauges derive
	// from these. Objective 0 means no SLO is configured.
	WallBuckets  []monitor.HistBucket `json:"-"`
	WallSum      float64              `json:"wall_sum_seconds"`
	WallCount    uint64               `json:"wall_count"`
	SLOThreshold float64              `json:"slo_threshold_seconds,omitempty"`
	SLOObjective float64              `json:"slo_objective,omitempty"`
}

// collectAdmission emits the blu_serve_* family from one snapshot.
func collectAdmission(r *Registry, a *AdmissionSnapshot) {
	r.Gauge("blu_serve_queue_depth", "Queries waiting in the admission queue.").With().Set(float64(a.QueueDepth))
	r.Gauge("blu_serve_queue_capacity", "Effective admission-queue capacity (halved while the fleet is unhealthy).").With().Set(float64(a.EffectiveCap))
	draining := 0.0
	if a.Draining {
		draining = 1
	}
	r.Gauge("blu_serve_draining", "Whether the server is draining (1) or admitting (0).").With().Set(draining)
	r.Gauge("blu_serve_sessions", "Live client sessions.").With().Set(float64(a.Sessions))
	r.Gauge("blu_serve_inflight", "Admitted queries currently executing.").With().Set(float64(a.Inflight))

	r.Counter("blu_serve_submitted_total", "Queries submitted to the admission queue.").With().AddUint(a.Submitted)
	outcomes := r.Counter("blu_serve_queries_total", "Submitted queries by terminal outcome; outcomes partition submissions exactly.")
	outcomes.With(L("outcome", "admitted")).AddUint(a.Admitted)
	outcomes.With(L("outcome", "shed")).AddUint(a.Shed)
	outcomes.With(L("outcome", "timed_out")).AddUint(a.TimedOut)
	outcomes.With(L("outcome", "drained")).AddUint(a.Drained)
	r.Counter("blu_serve_exec_errors_total", "Admitted queries that failed in parse/plan/execution (still counted as admitted).").With().AddUint(a.ExecErrors)
	r.Counter("blu_serve_place_retries_total", "Pre-execution placement backoff retries taken while the fleet was unhealthy.").With().AddUint(a.PlaceRetries)
	r.Counter("blu_serve_slow_queries_total", "Submissions that resolved over the slow-query wall-clock threshold.").With().AddUint(a.SlowQueries)

	active := r.Gauge("blu_serve_class_active", "Admitted queries executing, by user class.")
	limit := r.Gauge("blu_serve_class_limit", "Per-class concurrency limit.")
	queued := r.Gauge("blu_serve_class_queued", "Queries waiting in the admission queue, by user class.")
	classOutcomes := r.Counter("blu_serve_class_queries_total", "Submitted queries by user class and terminal outcome.")
	wait := r.Histogram("blu_serve_wait_seconds", "Admission-queue wait before execution, by user class.")
	wall := r.Histogram("blu_serve_wall_seconds", "End-to-end wall-clock latency (submit to resolve), by user class.")
	for _, c := range a.Classes {
		lbl := L("class", c.Class)
		active.With(lbl).Set(float64(c.Active))
		limit.With(lbl).Set(float64(c.Limit))
		queued.With(lbl).Set(float64(c.Queued))
		classOutcomes.With(lbl, L("outcome", "admitted")).AddUint(c.Admitted)
		classOutcomes.With(lbl, L("outcome", "shed")).AddUint(c.Shed)
		classOutcomes.With(lbl, L("outcome", "timed_out")).AddUint(c.TimedOut)
		classOutcomes.With(lbl, L("outcome", "drained")).AddUint(c.Drained)
		if c.WaitCount > 0 {
			histFromBuckets(wait.With(lbl), c.WaitBuckets, c.WaitSum, c.WaitCount)
		}
		if c.WallCount > 0 {
			histFromBuckets(wall.With(lbl), c.WallBuckets, c.WallSum, c.WallCount)
		}
	}
	collectSLO(r, a)
}
