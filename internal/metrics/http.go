package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminMux builds the admin HTTP surface over a scrape-time source
// function:
//
//	/metrics        Prometheus text exposition of Collect(src())
//	/metrics.json   the same snapshot as structured JSON
//	/healthz        scheduler device health and circuit-breaker state
//	/debug/queries  recent per-query rollups + the tracer's flame summary
//	/debug/explain  run ?q=<sql> and return its EXPLAIN ANALYZE audit
//	                (&format=text for the text tree; JSON by default)
//	/debug/prof/hotspots  deterministic top-N hotspot digest from the
//	                profile-capture ring (404 without a Captor source)
//	/debug/prof/capture   trigger one capture window now (?window=250ms)
//	                and return its stats
//
// src is called per request, so every response reflects live state.
func AdminMux(src func() Sources) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Collect(src()).WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		Collect(src()).WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeHealth(w, src())
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeDebugQueries(w, src())
	})
	mux.HandleFunc("/debug/explain", func(w http.ResponseWriter, req *http.Request) {
		writeDebugExplain(w, req, src())
	})
	mux.HandleFunc("/debug/prof/hotspots", func(w http.ResponseWriter, req *http.Request) {
		writeProfHotspots(w, src())
	})
	mux.HandleFunc("/debug/prof/capture", func(w http.ResponseWriter, req *http.Request) {
		writeProfCapture(w, req, src())
	})
	return mux
}

// writeProfHotspots renders the captor's deterministic hotspot digest:
// per-(class, phase) CPU attribution and the top-N functions by self
// time, aggregated over every capture window taken so far.
func writeProfHotspots(w http.ResponseWriter, src Sources) {
	if src.Captor == nil {
		http.Error(w, "no profile captor attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	src.Captor.WriteHotspots(w)
}

// writeProfCapture triggers one profile window synchronously (default
// 250ms, ?window= overrides within the captor's clamp) and returns the
// captor's cumulative stats. Returns 409 when the process CPU profiler
// is already running — e.g. a periodic window or /debug/pprof/profile.
func writeProfCapture(w http.ResponseWriter, req *http.Request, src Sources) {
	if src.Captor == nil {
		http.Error(w, "no profile captor attached", http.StatusNotFound)
		return
	}
	window := 250 * time.Millisecond
	if q := req.URL.Query().Get("window"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad window %q: %v", q, err), http.StatusBadRequest)
			return
		}
		window = d
	}
	c, err := src.Captor.CaptureNow(window)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	st := src.Captor.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"seq":           c.Seq,
		"samples":       c.Samples,
		"cpu_nanos":     c.CPUNanos,
		"cpu_bytes":     len(c.CPU),
		"heap_bytes":    len(c.Heap),
		"captures":      st.Captures,
		"skips":         st.Skips,
		"ring":          st.RingLen,
		"total_samples": st.Samples,
	})
}

// writeDebugExplain runs the query named by ?q= through the source's
// Explain hook and renders the decision audit: JSON by default,
// &format=text for the same report as the shell renders it.
func writeDebugExplain(w http.ResponseWriter, req *http.Request, src Sources) {
	if src.Explain == nil {
		http.Error(w, "no explain source attached", http.StatusNotFound)
		return
	}
	sql := req.URL.Query().Get("q")
	if sql == "" {
		http.Error(w, "missing q parameter (the SQL to explain)", http.StatusBadRequest)
		return
	}
	rep, err := src.Explain(sql)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
		return
	}
	data, err := rep.JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// deviceHealth is one device's entry in the /healthz body.
type deviceHealth struct {
	Device              int    `json:"device"`
	Quarantined         bool   `json:"quarantined"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Trips               uint64 `json:"breaker_trips"`
	Recoveries          uint64 `json:"breaker_recoveries"`
	ReopenAtSeconds     string `json:"reopen_at,omitempty"`
}

// healthAlerts summarizes the alert engine's contribution to /healthz.
type healthAlerts struct {
	Firing      int          `json:"firing"`
	Pending     int          `json:"pending"`
	PagesFiring int          `json:"pages_firing"`
	FiringNames []AlertState `json:"firing_alerts,omitempty"`
}

// healthBody is the /healthz response.
type healthBody struct {
	Status     string         `json:"status"` // ok | degraded | unhealthy
	GPUEnabled bool           `json:"gpu_enabled"`
	Devices    []deviceHealth `json:"devices,omitempty"`
	Alerts     *healthAlerts  `json:"alerts,omitempty"`
}

// writeHealth renders scheduler health. Status is "ok" with every
// breaker closed (or no GPU fleet at all — the CPU path serves),
// "degraded" with some devices quarantined, and "unhealthy" (HTTP 503)
// when every device is quarantined — or when the attached alert engine
// has a severity-page alert firing, so probes and admission degrade on
// the same signal an operator would page on.
func writeHealth(w http.ResponseWriter, src Sources) {
	pagesFiring := 0
	var alerts *healthAlerts
	if src.Obs != nil {
		if o := src.Obs(); o != nil && o.Alerts.Rules > 0 {
			a := o.Alerts
			pagesFiring = a.PagesFiring
			alerts = &healthAlerts{Firing: a.Firing, Pending: a.Pending, PagesFiring: a.PagesFiring}
			for _, st := range a.States {
				if st.State == AlertFiring {
					alerts.FiringNames = append(alerts.FiringNames, st)
				}
			}
		}
	}
	body := healthBody{Status: HealthStatusWith(src.Sched, pagesFiring), GPUEnabled: src.GPUEnabled, Alerts: alerts}
	if src.Sched != nil {
		for _, h := range src.Sched.Health() {
			dh := deviceHealth{
				Device:              h.Device,
				Quarantined:         h.Quarantined,
				ConsecutiveFailures: h.ConsecutiveFails,
				Trips:               h.Trips,
				Recoveries:          h.Recoveries,
			}
			if h.Quarantined {
				dh.ReopenAtSeconds = fmt.Sprintf("%.6f", float64(h.ReopenAt))
			}
			body.Devices = append(body.Devices, dh)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if body.Status == HealthUnhealthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.Encode(body)
}

// writeDebugQueries renders the per-query latency rollups and, when a
// tracer is attached, its flame summary.
func writeDebugQueries(w http.ResponseWriter, src Sources) {
	if src.Monitor == nil {
		fmt.Fprintln(w, "no monitor attached")
		return
	}
	queries := src.Monitor.Queries()
	fmt.Fprintf(w, "queries: %d distinct\n", len(queries))
	if len(queries) > 0 {
		fmt.Fprintf(w, "%-24s %-6s %-6s %-12s %-12s %-12s %-12s %s\n",
			"query", "runs", "gpu", "total", "p50", "p95", "p99", "max")
		for _, q := range queries {
			fmt.Fprintf(w, "%-24s %-6d %-6d %-12s %-12s %-12s %-12s %s\n",
				q.Name, q.Count, q.GPURuns, q.Total, q.P50, q.P95, q.P99, q.Max)
		}
	}
	if src.Tracer != nil {
		fmt.Fprintf(w, "\nflame summary (%d traced queries, %d spans):\n",
			src.Tracer.Queries(), len(src.Tracer.Spans()))
		src.Tracer.WriteFlame(w)
	}
	if src.Admission != nil {
		if snap := src.Admission(); snap != nil && len(snap.Recent) > 0 {
			fmt.Fprintf(w, "\nrecent requests (newest first):\n")
			fmt.Fprintf(w, "%-14s %-16s %-12s %-10s %12s %12s\n",
				"request", "query", "class", "outcome", "queue_ms", "total_ms")
			for _, rr := range snap.Recent {
				name := rr.Query
				if name == "" {
					name = "-"
				}
				slow := ""
				if rr.Slow {
					slow = "  SLOW"
				}
				fmt.Fprintf(w, "%-14s %-16s %-12s %-10s %12.3f %12.3f%s\n",
					rr.RequestID, name, rr.Class, rr.Outcome, rr.WaitMs, rr.TotalMs, slow)
			}
		}
	}
}

// MountPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/. Not mounted by default — profiling endpoints expose
// stacks and timing side-channels, so serving binaries gate this
// behind a flag.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts the admin surface on addr (host:port; port 0 picks a
// free port) and returns the server and its bound listener. The caller
// owns shutdown; serve errors after Close are swallowed.
func Serve(addr string, src func() Sources) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: AdminMux(src)}
	go srv.Serve(ln)
	return srv, ln, nil
}
