package metrics

import "blugpu/internal/sched"

// Alert states and severities, mirrored from internal/obsd's rule
// engine. The types live here (like AdmissionSnapshot) so the collector
// and /healthz consume alert state without importing obsd — obsd
// already imports metrics for Collect and Sources.
const (
	AlertInactive = "inactive"
	AlertPending  = "pending" // condition true, for: hold-down not yet served
	AlertFiring   = "firing"

	SeverityInfo = "info"
	SeverityWarn = "warn"
	SeverityPage = "page" // a firing page alert degrades /healthz and halves admission
)

// AlertState is one rule's current state.
type AlertState struct {
	Name     string  `json:"name"`
	Severity string  `json:"severity"`
	State    string  `json:"state"` // inactive | pending | firing
	Since    string  `json:"since,omitempty"`
	Value    float64 `json:"value,omitempty"` // expression value at last evaluation
	Summary  string  `json:"summary,omitempty"`
}

// AlertTransition is one recorded state transition.
type AlertTransition struct {
	At       string  `json:"at"` // RFC3339Nano of the evaluation that transitioned
	Alert    string  `json:"alert"`
	Severity string  `json:"severity"`
	To       string  `json:"to"` // pending | firing | resolved
	Value    float64 `json:"value,omitempty"`
}

// AlertsSnapshot is the rule engine's point-in-time state: every rule's
// status plus the recent transition ring.
type AlertsSnapshot struct {
	Rules       int               `json:"rules"`
	Firing      int               `json:"firing"`
	Pending     int               `json:"pending"`
	PagesFiring int               `json:"pages_firing"` // firing rules with severity page
	States      []AlertState      `json:"alerts,omitempty"`
	Transitions []AlertTransition `json:"recent_transitions,omitempty"`
	// TransitionCounts feed blu_alerts_transitions_total: lifetime
	// transition counts by (alert, to), deterministically ordered.
	TransitionCounts []AlertTransitionCount `json:"-"`
}

// AlertTransitionCount is one (alert, to) lifetime transition counter.
type AlertTransitionCount struct {
	Alert string
	To    string
	Count uint64
}

// ObsSnapshot is the embedded time-series store's self-accounting plus
// its alert engine state — the Sources.Obs scrape input.
type ObsSnapshot struct {
	Scrapes           uint64  `json:"scrapes"`
	Samples           uint64  `json:"samples"` // lifetime appended sample points
	Series            int     `json:"series"`  // live ring series
	DroppedSeries     uint64  `json:"dropped_series"`
	ScrapeWallSeconds float64 `json:"scrape_wall_seconds"`
	StepSeconds       float64 `json:"step_seconds"`
	RetentionSeconds  float64 `json:"retention_seconds"`
	LastScrape        string  `json:"last_scrape,omitempty"`

	Alerts AlertsSnapshot `json:"alerts"`
}

// collectObs emits the blu_obsd_* self-accounting family and the
// blu_alerts_* alert-state family from one snapshot.
func collectObs(r *Registry, o *ObsSnapshot) {
	r.Counter("blu_obsd_scrapes_total", "Self-scrapes the embedded time-series store has taken.").With().AddUint(o.Scrapes)
	r.Counter("blu_obsd_samples_total", "Sample points appended into ring series.").With().AddUint(o.Samples)
	r.Gauge("blu_obsd_series", "Live ring series held by the embedded store.").With().Set(float64(o.Series))
	r.Counter("blu_obsd_dropped_series_total", "Series refused because the store hit its series bound.").With().AddUint(o.DroppedSeries)
	r.Counter("blu_obsd_scrape_wall_seconds_total", "Wall time spent scraping and evaluating rules (the store's own overhead).").With().Add(o.ScrapeWallSeconds)
	r.Gauge("blu_obsd_step_seconds", "Configured scrape step.").With().Set(o.StepSeconds)
	r.Gauge("blu_obsd_retention_seconds", "Configured ring retention window.").With().Set(o.RetentionSeconds)

	a := o.Alerts
	r.Gauge("blu_alerts_rules", "Alert rules loaded into the embedded rule engine.").With().Set(float64(a.Rules))
	if a.Rules == 0 {
		return
	}
	firing := r.Gauge("blu_alerts_firing", "Whether the alert is firing (1) or not (0), by alert and severity.")
	pending := r.Gauge("blu_alerts_pending", "Whether the alert is pending its for: hold-down (1) or not (0), by alert and severity.")
	for _, st := range a.States {
		lbls := []Label{L("alert", st.Name), L("severity", st.Severity)}
		f, p := 0.0, 0.0
		switch st.State {
		case AlertFiring:
			f = 1
		case AlertPending:
			p = 1
		}
		firing.With(lbls...).Set(f)
		pending.With(lbls...).Set(p)
	}
	if len(a.TransitionCounts) > 0 {
		tc := r.Counter("blu_alerts_transitions_total", "Alert state transitions by alert and destination state (pending, firing, resolved).")
		for _, t := range a.TransitionCounts {
			tc.With(L("alert", t.Alert), L("to", t.To)).AddUint(t.Count)
		}
	}
}

// HealthStatusWith combines breaker-fleet health with alert state: a
// firing severity-page alert marks the process unhealthy, so /healthz
// answers 503 and the admission shedder halves effective capacity —
// exactly the degradation an all-breakers-open fleet already causes.
// Everything else defers to HealthStatus.
func HealthStatusWith(s *sched.Scheduler, pagesFiring int) string {
	if pagesFiring > 0 {
		return HealthUnhealthy
	}
	return HealthStatus(s)
}
