package metrics

import (
	"strconv"

	"blugpu/internal/explain"
	"blugpu/internal/gpu"
	"blugpu/internal/monitor"
	"blugpu/internal/prof"
	"blugpu/internal/sched"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// Sources names the live objects one scrape snapshots. Monitor is
// required; the rest are optional (nil/empty is skipped). Explain, when
// set, backs the /debug/explain endpoint: it runs a query and returns
// its EXPLAIN ANALYZE decision audit.
type Sources struct {
	Monitor    *monitor.Monitor
	Sched      *sched.Scheduler
	Devices    []*gpu.Device
	Tracer     *trace.Tracer
	GPUEnabled bool
	Explain    func(sql string) (*explain.Report, error)
	// Admission, when set, snapshots the serving layer's admission state
	// per scrape (queue depth, outcome counters, per-class waits).
	Admission func() *AdmissionSnapshot
	// Runtime, when set, samples Go runtime telemetry per scrape
	// (goroutines, heap, GC pauses, scheduling latency) into the
	// blu_go_* family. Wire SampleRuntime for live processes; tests
	// inject fixed stats for golden-locked exposition.
	Runtime func() *RuntimeStats
	// Prof, when set, exposes per-(class, phase) resource attribution
	// as the blu_prof_* family.
	Prof *prof.Accountant
	// Captor, when set, exposes the periodic profile captor's
	// bookkeeping (windows, skips, ring depth, aggregate samples).
	Captor *prof.Captor
	// Obs, when set, snapshots the embedded time-series store and its
	// alert engine (blu_obsd_* self-accounting, blu_alerts_* states).
	// A firing severity-page alert also flips /healthz to unhealthy.
	Obs func() *ObsSnapshot
}

// EngineLike is the slice of the engine API the metrics layer needs;
// *engine.Engine satisfies it structurally, without this package
// importing the engine.
type EngineLike interface {
	Monitor() *monitor.Monitor
	Scheduler() *sched.Scheduler
	Devices() []*gpu.Device
	Tracer() *trace.Tracer
	GPUEnabled() bool
	ExplainAnalyze(sql string) (*explain.Report, error)
}

// SourcesFromEngine adapts an engine into the scrape-time source
// function AdminMux and Collect consume. Go runtime telemetry is wired
// by default: every consumer of an engine-backed scrape (the shell's
// \metrics, blubench -metrics-out, the admin mux) gets the blu_go_*
// family without extra plumbing. The blu_slo_* family still needs an
// Admission source — it is a property of the serving layer, which a
// bare engine does not have.
func SourcesFromEngine(e EngineLike) func() Sources {
	return func() Sources {
		return Sources{
			Monitor:    e.Monitor(),
			Sched:      e.Scheduler(),
			Devices:    e.Devices(),
			Tracer:     e.Tracer(),
			GPUEnabled: e.GPUEnabled(),
			Explain:    e.ExplainAnalyze,
			Runtime:    SampleRuntime,
		}
	}
}

// Collect snapshots the sources into a fresh registry. Every scrape
// builds a new registry, so the exposition is a pure function of the
// sources' state at scrape time.
func Collect(src Sources) *Registry {
	r := NewRegistry()
	if src.Monitor != nil {
		collectMonitor(r, src.Monitor)
	}
	var now vtime.Time
	if src.Sched != nil {
		collectSched(r, src.Sched)
		now = src.Sched.Now()
	}
	collectDevices(r, src.Devices, now)
	if src.Tracer != nil {
		collectTracer(r, src.Tracer)
	}
	if src.Admission != nil {
		if snap := src.Admission(); snap != nil {
			collectAdmission(r, snap)
		}
	}
	if src.Runtime != nil {
		if rt := src.Runtime(); rt != nil {
			collectRuntime(r, rt)
		}
	}
	if src.Prof != nil || src.Captor != nil {
		collectProf(r, src.Prof, src.Captor)
	}
	if src.Obs != nil {
		if o := src.Obs(); o != nil {
			collectObs(r, o)
		}
	}
	enabled := 0.0
	if src.GPUEnabled {
		enabled = 1
	}
	r.Gauge("blu_gpu_enabled", "Whether GPU offload is currently enabled (1) or the engine is CPU-only (0).").With().Set(enabled)
	return r
}

// histFromBuckets converts a monitor cumulative-bucket snapshot.
func histFromBuckets(h *Histogram, buckets []monitor.HistBucket, sumSeconds float64, count uint64) {
	out := make([]Bucket, len(buckets))
	for i, b := range buckets {
		out[i] = Bucket{UpperBound: b.UpperBound.Seconds(), CumCount: b.CumCount}
	}
	h.SetCumulative(out, sumSeconds, count)
}

func collectMonitor(r *Registry, m *monitor.Monitor) {
	kernExec := r.Counter("blu_kernel_executions_total", "Kernel executions by kernel name.")
	kernTime := r.Counter("blu_kernel_time_seconds_total", "Modeled device time by kernel name.")
	kernLat := r.Histogram("blu_kernel_latency_seconds", "Modeled kernel latency distribution by kernel name.")
	for _, k := range m.Kernels() {
		kernExec.With(L("kernel", k.Name)).AddUint(k.Count)
		kernTime.With(L("kernel", k.Name)).Add(k.Total.Seconds())
		histFromBuckets(kernLat.With(L("kernel", k.Name)), k.Buckets, k.Total.Seconds(), k.Count)
	}

	evalExec := r.Counter("blu_evaluator_executions_total", "Host-side evaluator executions by evaluator name.")
	evalRows := r.Counter("blu_evaluator_rows_total", "Rows processed by host-side evaluators.")
	evalTime := r.Counter("blu_evaluator_time_seconds_total", "Modeled host time by evaluator name.")
	evalLat := r.Histogram("blu_evaluator_latency_seconds", "Modeled evaluator latency distribution by evaluator name.")
	for _, e := range m.Evaluators() {
		evalExec.With(L("evaluator", e.Name)).AddUint(e.Count)
		if e.Rows > 0 {
			evalRows.With(L("evaluator", e.Name)).Add(float64(e.Rows))
		}
		evalTime.With(L("evaluator", e.Name)).Add(e.Total.Seconds())
		histFromBuckets(evalLat.With(L("evaluator", e.Name)), e.Buckets, e.Total.Seconds(), e.Count)
	}

	qExec := r.Counter("blu_query_executions_total", "Completed query executions by query name.")
	qGPU := r.Counter("blu_query_gpu_executions_total", "Query executions that took a device path, by query name.")
	qLat := r.Histogram("blu_query_latency_seconds", "Modeled end-to-end query latency distribution by query name.")
	for _, q := range m.Queries() {
		qExec.With(L("query", q.Name)).AddUint(q.Count)
		qGPU.With(L("query", q.Name)).AddUint(q.GPURuns)
		histFromBuckets(qLat.With(L("query", q.Name)), q.Buckets, q.Total.Seconds(), q.Count)
	}

	h2d, d2h := m.Transfers()
	trN := r.Counter("blu_transfers_total", "PCIe transfers by direction.")
	trBytes := r.Counter("blu_transfer_bytes_total", "Bytes moved over PCIe by direction.")
	trTime := r.Counter("blu_transfer_time_seconds_total", "Modeled transfer time by direction.")
	trRate := r.Gauge("blu_transfer_throughput_bytes_per_second", "Average modeled transfer throughput by direction.")
	for _, dir := range []struct {
		name string
		st   monitor.TransferStats
	}{{"h2d", h2d}, {"d2h", d2h}} {
		trN.With(L("direction", dir.name)).AddUint(dir.st.Count)
		trBytes.With(L("direction", dir.name)).Add(float64(dir.st.Bytes))
		trTime.With(L("direction", dir.name)).Add(dir.st.Total.Seconds())
		trRate.With(L("direction", dir.name)).Set(dir.st.Throughput())
	}

	ok, fail := m.ReserveCounts()
	res := r.Counter("blu_reservations_total", "Device-memory reservation attempts by result.")
	res.With(L("result", "ok")).AddUint(ok)
	res.With(L("result", "fail")).AddUint(fail)

	faults := r.Counter("blu_faults_injected_total", "Injected GPU faults by operation site.")
	for site, n := range m.FaultCounts() {
		faults.With(L("site", site)).AddUint(n)
	}
	deg := r.Counter("blu_degraded_ops_total", "Degraded operations (same-placement retries, CPU fallbacks) by kind and operation.")
	degFaulted := r.Counter("blu_degraded_ops_faulted_total", "Degraded operations caused by injected faults or device loss.")
	for _, ds := range m.Retries() {
		deg.With(L("kind", "retry"), L("op", ds.Op)).AddUint(ds.Count)
		degFaulted.With(L("kind", "retry"), L("op", ds.Op)).AddUint(ds.Faulted)
	}
	for _, ds := range m.Fallbacks() {
		deg.With(L("kind", "fallback"), L("op", ds.Op)).AddUint(ds.Count)
		degFaulted.With(L("kind", "fallback"), L("op", ds.Op)).AddUint(ds.Faulted)
	}
	dec := r.Counter("blu_optimizer_decisions_total", "Figure-3 optimizer path decisions at group-by execution, by decision and reason.")
	for _, d := range m.Decisions() {
		dec.With(L("decision", d.Decision), L("reason", d.Reason)).AddUint(d.Count)
	}
	if kmv := m.KMVError(); kmv.Count > 0 {
		kmvHist := r.Histogram("blu_kmv_relative_error", "KMV group-count estimator relative error |estimated-actual|/actual, one sample per executed group-by.")
		histFromBuckets(kmvHist.With(), kmv.Buckets, kmv.Sum, kmv.Count)
	}

	if chains, saved, uploaded := m.FusedStats(); chains > 0 {
		r.Counter("blu_fused_chains_total", "Group-by operator chains executed as fused device pipelines.").With().AddUint(chains)
		r.Counter("blu_transfer_saved_bytes_total", "H2D bytes avoided by fused chains whose input columns were already device-resident.").With().Add(float64(saved))
		r.Counter("blu_fused_fill_bytes_total", "H2D bytes uploaded by fused-chain column-cache fills (investment that later chains save against).").With().Add(float64(uploaded))
	}

	trips, recovers := m.BreakerCounts()
	breaker := r.Counter("blu_breaker_transitions_total", "Circuit-breaker transitions by direction.")
	breaker.With(L("transition", "trip")).AddUint(trips)
	breaker.With(L("transition", "recover")).AddUint(recovers)

	peak := r.Gauge("blu_device_memory_peak_bytes", "Peak sampled device-memory use over the run, by device.")
	samples := r.Gauge("blu_device_memory_samples", "Retained device-memory utilization samples, by device.")
	for _, dev := range m.Devices() {
		series := m.MemSeries(dev)
		var p int64
		for _, s := range series {
			if s.Used > p {
				p = s.Used
			}
		}
		lbl := L("device", strconv.Itoa(dev))
		peak.With(lbl).Set(float64(p))
		samples.With(lbl).Set(float64(len(series)))
	}
}

func collectSched(r *Registry, s *sched.Scheduler) {
	ok, fail := s.PlaceCounts()
	place := r.Counter("blu_sched_placements_total", "Scheduler task placements by result (fail counts terminal failures, not per-device retries).")
	place.With(L("result", "ok")).AddUint(ok)
	place.With(L("result", "fail")).AddUint(fail)

	quarantined := r.Gauge("blu_device_quarantined", "Whether the device's circuit breaker is open (1) or the device takes placements (0).")
	consec := r.Gauge("blu_device_consecutive_failures", "Consecutive failed operations on the device.")
	trips := r.Counter("blu_device_breaker_trips_total", "Circuit-breaker trips by device.")
	recovers := r.Counter("blu_device_breaker_recoveries_total", "Circuit-breaker recoveries by device.")
	outstanding := r.Gauge("blu_device_outstanding_jobs", "Admitted, unfinished kernel calls by device.")
	for _, h := range s.Health() {
		lbl := L("device", strconv.Itoa(h.Device))
		q := 0.0
		if h.Quarantined {
			q = 1
		}
		quarantined.With(lbl).Set(q)
		consec.With(lbl).Set(float64(h.ConsecutiveFails))
		trips.With(lbl).AddUint(h.Trips)
		recovers.With(lbl).AddUint(h.Recoveries)
	}
	for _, snap := range s.Snapshot() {
		outstanding.With(L("device", strconv.Itoa(snap.Device))).Set(float64(snap.Outstanding))
	}

	if delays := s.QueueDelays(); len(delays) > 0 {
		qd := r.Histogram("blu_device_queue_delay_seconds", "Wall-clock time blocking placements spent queued for device memory, by the device that eventually granted them (immediate grants observe ~0).")
		for _, d := range delays {
			histFromBuckets(qd.With(L("device", strconv.Itoa(d.Device))), d.Buckets, d.SumSeconds, d.Count)
		}
	}
}

func collectDevices(r *Registry, devices []*gpu.Device, now vtime.Time) {
	if len(devices) == 0 {
		return
	}
	used := r.Gauge("blu_device_memory_used_bytes", "Allocated plus reserved device memory, by device.")
	total := r.Gauge("blu_device_memory_total_bytes", "Device-memory capacity, by device.")
	kernels := r.Counter("blu_device_kernels_total", "Kernel launches by device.")
	transfers := r.Counter("blu_device_transfers_total", "PCIe transfers by device.")
	busy := r.Counter("blu_device_busy_seconds_total", "Modeled device busy time by device and event kind (kernel, h2d, d2h).")
	ratio := r.Gauge("blu_device_busy_ratio", "Modeled busy time over the virtual clock; concurrent kernels on one device can push this above 1.")
	reserved := r.Gauge("blu_device_reserved_bytes", "Current reservation occupancy (reserved plus allocated device memory), by device.")
	reservedPeak := r.Gauge("blu_device_reserved_peak_bytes", "High-water reservation occupancy over the device's lifetime, by device.")
	for _, d := range devices {
		lbl := L("device", strconv.Itoa(d.ID()))
		c := d.Counters()
		used.With(lbl).Set(float64(c.MemUsed))
		total.With(lbl).Set(float64(d.TotalMemory()))
		kernels.With(lbl).AddUint(c.Kernels)
		transfers.With(lbl).AddUint(c.Transfers)

		u := d.Util()
		busy.With(lbl, L("kind", "kernel")).Add(u.Kernel.Seconds())
		busy.With(lbl, L("kind", "h2d")).Add(u.H2D.Seconds())
		busy.With(lbl, L("kind", "d2h")).Add(u.D2H.Seconds())
		if now > 0 {
			ratio.With(lbl).Set(u.Busy().Seconds() / float64(now))
		} else {
			ratio.With(lbl).Set(0)
		}
		reserved.With(lbl).Set(float64(u.ReservedBytes))
		reservedPeak.With(lbl).Set(float64(u.ReservedPeakBytes))
	}
}

func collectTracer(r *Registry, t *trace.Tracer) {
	r.Counter("blu_trace_queries_total", "Query root spans started by the attached tracer.").With().AddUint(t.Queries())
	r.Gauge("blu_trace_spans", "Spans currently held by the attached tracer.").With().Set(float64(len(t.Spans())))
	r.Counter("blu_trace_orphans_total", "Device events that arrived without a live parent span.").With().AddUint(t.Orphans())
}
