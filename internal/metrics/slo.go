package metrics

import "blugpu/internal/monitor"

// collectSLO emits the blu_slo_* family: per-class wall-latency SLO
// parameters and the error-budget burn rate derived from the observed
// wall-latency distribution.
//
// A class's "SLO errors" are the submissions that resolved slower than
// its threshold. The error rate over the budget the objective leaves
// (1 - objective) is the burn rate: 1.0 means latency is consuming the
// budget exactly as fast as the objective allows; above 1.0 the SLO is
// burning down; sustained values well above 1.0 page.
//
// Breaches are counted at histogram-bucket granularity — the boundary
// used is the first bucket bound at or above the threshold, so the
// count is conservative (a breach inside that bucket but under the
// bound is missed). The log-scale buckets keep that error within one
// power of two.
func collectSLO(r *Registry, a *AdmissionSnapshot) {
	for _, c := range a.Classes {
		if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
			continue
		}
		lbl := L("class", c.Class)
		r.Gauge("blu_slo_threshold_seconds", "Per-class wall-latency SLO threshold.").With(lbl).Set(c.SLOThreshold)
		r.Gauge("blu_slo_objective", "Per-class SLO objective: the target fraction of submissions resolving within the threshold.").With(lbl).Set(c.SLOObjective)
		n := c.WallCount
		r.Counter("blu_slo_requests_total", "Submissions measured against the class SLO.").With(lbl).AddUint(n)
		over := sloBreaches(c.WallBuckets, n, c.SLOThreshold)
		r.Counter("blu_slo_breaches_total", "Submissions that resolved slower than the class SLO threshold (bucket-granular).").With(lbl).AddUint(over)
		rate := 0.0
		if n > 0 {
			rate = float64(over) / float64(n)
		}
		r.Gauge("blu_slo_error_rate", "Observed fraction of submissions breaching the class SLO threshold.").With(lbl).Set(rate)
		r.Gauge("blu_slo_burn_rate", "Error-budget burn rate: error rate over the budget (1 - objective); above 1.0 the SLO is burning down.").With(lbl).Set(rate / (1 - c.SLOObjective))
	}
}

// sloBreaches counts observations above thresholdSeconds from a
// cumulative bucket snapshot: total minus the cumulative count at the
// first bucket bound at or above the threshold. With every bound below
// the threshold nothing breaches.
func sloBreaches(buckets []monitor.HistBucket, total uint64, thresholdSeconds float64) uint64 {
	for _, b := range buckets {
		if b.UpperBound.Seconds() >= thresholdSeconds {
			return total - b.CumCount
		}
	}
	return 0
}
