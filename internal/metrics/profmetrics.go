package metrics

import (
	"blugpu/internal/prof"
)

// collectProf emits the blu_prof_* family: per-(class, phase) resource
// attribution from the serving layer's accountant, plus the profile
// captor's own bookkeeping. The wall column is the exact counterpart of
// the query log's phase fields (both ledgers are fed the same measured
// durations); the CPU column is statistical — folded from pprof-labeled
// profile samples — and converges on true on-CPU time only in
// expectation.
func collectProf(r *Registry, acct *prof.Accountant, captor *prof.Captor) {
	if acct != nil {
		snap := acct.Snapshot()
		if len(snap) > 0 {
			wall := r.Counter("blu_prof_wall_seconds_total", "Wall-clock time by user class and query phase; reconciles exactly against the query log's phase sums.")
			cpu := r.Counter("blu_prof_cpu_seconds_total", "Profiled on-CPU time by user class and query phase, attributed via pprof labels (statistical).")
			alloc := r.Counter("blu_prof_alloc_bytes_total", "Heap bytes allocated by user class and query phase (approximate under concurrency).")
			phases := r.Counter("blu_prof_phases_total", "Instrumented phase executions by user class and query phase.")
			for _, st := range snap {
				lbl := []Label{L("class", st.Class), L("phase", st.Phase)}
				wall.With(lbl...).Add(st.WallSeconds)
				cpu.With(lbl...).Add(st.CPUSeconds)
				alloc.With(lbl...).Add(float64(st.AllocBytes))
				phases.With(lbl...).AddUint(st.Count)
			}
		}
	}
	if captor != nil {
		st := captor.Stats()
		r.Counter("blu_prof_captures_total", "Completed periodic CPU-profile windows.").With().AddUint(st.Captures)
		r.Counter("blu_prof_capture_skips_total", "Profile windows skipped because the process CPU profiler was already running.").With().AddUint(st.Skips)
		r.Gauge("blu_prof_capture_ring", "Profile captures currently retained in the bounded ring.").With().Set(float64(st.RingLen))
		r.Counter("blu_prof_capture_samples_total", "CPU samples aggregated over all profile captures.").With().AddUint(st.Samples)
		r.Counter("blu_prof_capture_cpu_seconds_total", "Profiled CPU time aggregated over all profile captures.").With().Add(float64(st.CPUNanos) / 1e9)
	}
}
