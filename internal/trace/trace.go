// Package trace implements the per-query span tracer behind the
// engine's operator-level attribution: every query builds a tree of
// spans (query → operator → evaluator/sort-job/GPU attempt →
// kernel/transfer) positioned on the simulation's virtual timeline and
// stamped with wall-clock bounds.
//
// The paper's Section 2.3 point is that device time must be attributed
// to the *host application's* operators, which off-the-shelf tools
// cannot do. internal/monitor answers "how much, in aggregate"; this
// package answers "which query, which operator, which attempt".
//
// Design constraints:
//
//   - Tracing off must cost nothing. A zero Context (or one derived
//     from a nil Tracer) makes every method a nil-check no-op; no time
//     is read and no memory is allocated.
//   - Concurrency-safe: spans may begin, end, annotate and export from
//     any goroutine (the GPU moderator races kernels; device events
//     arrive from executing queries).
//   - Deterministic: span IDs are assigned in creation order and the
//     Chrome export contains only virtual-time stamps, so a fixed-seed
//     run exports byte-identical JSON (wall-clock bounds appear only in
//     the human-oriented flame summary).
package trace

import (
	"fmt"
	"sync"
	"time"

	"blugpu/internal/vtime"
)

// SpanID identifies one span within a Tracer. 0 is "no span".
type SpanID uint64

// Attr is one typed span attribute: either a string or an int64 value.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Int: v, IsInt: true} }

// Value renders the attribute value as a string.
func (a Attr) Value() string {
	if a.IsInt {
		return fmt.Sprintf("%d", a.Int)
	}
	return a.Str
}

// Span is one traced interval. Start/End are on the virtual timeline
// shared by every span in the tracer; WallStart/WallEnd are real time.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for query roots
	Query  uint64 // 1-based query sequence number
	Depth  int    // tree depth; roots are 0
	Cat    string // "query", "op", "eval", "gpu", "sched", "sort-job", "kernel", "transfer", "cpu"
	Name   string

	Start, End         vtime.Time
	WallStart, WallEnd time.Time

	Attrs []Attr
}

// span is the mutable internal record. cursor lays out event-derived
// child spans (kernels, transfers) sequentially under their parent.
type span struct {
	Span
	cursor vtime.Time
	ended  bool
}

// Tracer collects spans. Safe for concurrent use; the zero value is not
// usable — call New.
type Tracer struct {
	mu      sync.Mutex
	spans   []*span
	byID    map[SpanID]*span
	lastID  SpanID
	queries uint64
	// orphans counts device events (kernel/transfer/fault) that arrived
	// with no live span to attach to. A fully-traced run has zero.
	orphans uint64
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{byID: make(map[SpanID]*span)}
}

// Context addresses one span of one tracer. The zero value is a valid
// no-op context (tracing disabled).
type Context struct {
	tr    *Tracer
	id    SpanID
	query uint64
}

// Enabled reports whether the context is attached to a tracer.
func (c Context) Enabled() bool { return c.tr != nil }

// ID returns the context's span id, 0 when disabled.
func (c Context) ID() SpanID { return c.id }

// Query returns the 1-based query sequence number the context belongs
// to, 0 when disabled. EXPLAIN ANALYZE uses it to carve one query's
// subtree out of a shared tracer.
func (c Context) Query() uint64 { return c.query }

// newSpanLocked allocates and registers a span. Caller holds t.mu.
func (t *Tracer) newSpanLocked(parent SpanID, query uint64, depth int, cat, name string, at vtime.Time) *span {
	t.lastID++
	s := &span{Span: Span{
		ID: t.lastID, Parent: parent, Query: query, Depth: depth,
		Cat: cat, Name: name, Start: at, End: at,
	}, cursor: at}
	t.spans = append(t.spans, s)
	t.byID[s.ID] = s
	return s
}

// StartQuery opens a new query-root span at virtual time at and returns
// its context. name may be empty; the root is then named "q<seq>".
func (t *Tracer) StartQuery(name string, at vtime.Time) Context {
	if t == nil {
		return Context{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queries++
	if name == "" {
		name = fmt.Sprintf("q%d", t.queries)
	}
	s := t.newSpanLocked(0, t.queries, 0, "query", name, at)
	s.WallStart = now
	return Context{tr: t, id: s.ID, query: t.queries}
}

// Begin opens a child span under c at virtual time at.
func (c Context) Begin(cat, name string, at vtime.Time) Context {
	if c.tr == nil {
		return Context{}
	}
	now := time.Now()
	c.tr.mu.Lock()
	defer c.tr.mu.Unlock()
	depth := 1
	if p := c.tr.byID[c.id]; p != nil {
		depth = p.Depth + 1
	}
	s := c.tr.newSpanLocked(c.id, c.query, depth, cat, name, at)
	s.WallStart = now
	return Context{tr: c.tr, id: s.ID, query: c.query}
}

// End closes the span at virtual time at, appending attrs. Ending an
// already-ended span only appends the attributes.
func (c Context) End(at vtime.Time, attrs ...Attr) {
	if c.tr == nil {
		return
	}
	now := time.Now()
	c.tr.mu.Lock()
	defer c.tr.mu.Unlock()
	s := c.tr.byID[c.id]
	if s == nil {
		return
	}
	if !s.ended {
		s.ended = true
		s.End = at
		s.WallEnd = now
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Emit records a complete child span covering [at, at+d).
func (c Context) Emit(cat, name string, at vtime.Time, d vtime.Duration, attrs ...Attr) {
	if c.tr == nil {
		return
	}
	now := time.Now()
	c.tr.mu.Lock()
	defer c.tr.mu.Unlock()
	depth := 1
	if p := c.tr.byID[c.id]; p != nil {
		depth = p.Depth + 1
	}
	s := c.tr.newSpanLocked(c.id, c.query, depth, cat, name, at)
	s.End = at.Add(d)
	s.WallStart, s.WallEnd = now, now
	s.ended = true
	s.Attrs = append(s.Attrs, attrs...)
}

// Annotate appends attributes to the context's span.
func (c Context) Annotate(attrs ...Attr) {
	if c.tr == nil || len(attrs) == 0 {
		return
	}
	c.tr.mu.Lock()
	defer c.tr.mu.Unlock()
	if s := c.tr.byID[c.id]; s != nil {
		s.Attrs = append(s.Attrs, attrs...)
	}
}

// RecordDeviceEvent attaches one device event to the span tree. The
// engine's event sink calls it for every gpu.Event, passing the event's
// bound span id:
//
//   - kernel and transfer events ("kernel", "h2d", "d2h") materialize
//     as leaf spans laid out sequentially under the parent (each parent
//     keeps a layout cursor starting at its own Start);
//   - fault and reserve-fail events become attributes on the parent
//     span, which is how "every injected fault appears as a span
//     attribute" is implemented;
//   - reserve events are dropped (the monitor counts them; the
//     placement span already carries the chosen device).
//
// Events with an unknown or zero parent are counted as orphans.
func (t *Tracer) RecordDeviceEvent(parent SpanID, device int, kind, name string, bytes int64, modeled vtime.Duration) {
	if t == nil {
		return
	}
	if kind == "reserve" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.byID[parent]
	if p == nil {
		t.orphans++
		return
	}
	switch kind {
	case "fault":
		p.Attrs = append(p.Attrs, Str("fault", name))
		return
	case "reserve-fail":
		p.Attrs = append(p.Attrs, Int("reserve-fail-bytes", bytes))
		return
	}
	cat, spanName := "kernel", name
	if kind == "h2d" || kind == "d2h" {
		cat, spanName = "transfer", kind
	}
	s := t.newSpanLocked(p.ID, p.Query, p.Depth+1, cat, spanName, p.cursor)
	s.End = p.cursor.Add(modeled)
	s.ended = true
	p.cursor = s.End
	s.Attrs = append(s.Attrs, Int("device", int64(device)), Int("bytes", bytes))
}

// Spans returns a snapshot of every span in creation order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.Span
		out[i].Attrs = append([]Attr(nil), s.Attrs...)
	}
	return out
}

// QuerySpans returns a snapshot of every span belonging to query
// sequence number q, in creation order. It is the span-side input to
// the EXPLAIN ANALYZE reconciliation: one query's complete subtree.
func (t *Tracer) QuerySpans(q uint64) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, s := range t.spans {
		if s.Query != q {
			continue
		}
		sp := s.Span
		sp.Attrs = append([]Attr(nil), s.Attrs...)
		out = append(out, sp)
	}
	return out
}

// Queries returns the number of query roots started.
func (t *Tracer) Queries() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queries
}

// Orphans returns the number of device events that arrived without a
// live parent span. Zero in a fully-attributed run.
func (t *Tracer) Orphans() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.orphans
}

// FaultAttrCount counts "fault" attributes across all spans — the
// span-side total that must match the injector's count in a traced
// fault sweep.
func (t *Tracer) FaultAttrCount() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, s := range t.spans {
		for _, a := range s.Attrs {
			if a.Key == "fault" {
				n++
			}
		}
	}
	return n
}

// Reset discards all spans and counters.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = nil
	t.byID = make(map[SpanID]*span)
	t.lastID = 0
	t.queries = 0
	t.orphans = 0
}
