package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"blugpu/internal/vtime"
)

func ringEntry(id string, wall time.Duration, slow bool) RingEntry {
	return RingEntry{
		RequestID: id,
		Query:     "q-" + id,
		Class:     "simple",
		Seq:       1,
		Wall:      wall,
		Slow:      slow,
		Spans: []Span{{
			Query: 1, Cat: "query", Name: "q-" + id,
			Start: 0, End: vtime.Time(0.001),
			WallStart: time.Unix(100, 0), WallEnd: time.Unix(100, 0).Add(wall),
			Attrs: []Attr{{Key: "request_id", Str: id}},
		}},
	}
}

func TestRingEvictionAndLookup(t *testing.T) {
	r := NewRing(4, 2)
	for i := 0; i < 6; i++ {
		r.Add(ringEntry(fmt.Sprintf("r%d", i), time.Duration(i)*time.Millisecond, false))
	}
	added, retained, slow := r.Stats()
	if added != 6 || retained != 4 || slow != 0 {
		t.Fatalf("stats = %d/%d/%d, want 6/4/0", added, retained, slow)
	}
	// r0 and r1 were overwritten; r2..r5 remain, newest first.
	if _, ok := r.Get("r0"); ok {
		t.Fatal("r0 must be evicted")
	}
	if _, ok := r.Get("r5"); !ok {
		t.Fatal("r5 must be retained")
	}
	recent := r.Recent()
	if len(recent) != 4 || recent[0].RequestID != "r5" || recent[3].RequestID != "r2" {
		ids := make([]string, len(recent))
		for i, e := range recent {
			ids[i] = e.RequestID
		}
		t.Fatalf("recent order = %v, want [r5 r4 r3 r2]", ids)
	}
}

func TestRingSlowRetentionOutlivesEviction(t *testing.T) {
	r := NewRing(2, 2)
	r.Add(ringEntry("slow-a", 300*time.Millisecond, true))
	r.Add(ringEntry("slow-b", 500*time.Millisecond, true))
	// Flood the recency ring so both slow entries are overwritten there.
	for i := 0; i < 8; i++ {
		r.Add(ringEntry(fmt.Sprintf("fast%d", i), time.Millisecond, false))
	}
	for _, id := range []string{"slow-a", "slow-b"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("%s must survive via the slow set", id)
		}
	}
	slow := r.Slow()
	if len(slow) != 2 || slow[0].RequestID != "slow-b" || slow[1].RequestID != "slow-a" {
		t.Fatalf("slow set must be sorted slowest-first, got %+v", slow)
	}
	// A third slow entry evicts the fastest of the retained two.
	r.Add(ringEntry("slow-c", 400*time.Millisecond, true))
	if _, ok := r.Get("slow-a"); ok {
		t.Fatal("slow-a (fastest) must be evicted from a full slow set")
	}
	if _, ok := r.Get("slow-c"); !ok {
		t.Fatal("slow-c must be retained")
	}
}

func TestExportChromeEntriesValidates(t *testing.T) {
	r := NewRing(8, 4)
	r.Add(ringEntry("req-1", 2*time.Millisecond, false))
	r.Add(ringEntry("req-2", 3*time.Millisecond, true))
	var buf bytes.Buffer
	if err := ExportChromeEntries(&buf, r.Recent()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("ring export fails the Chrome validator: %v\n%s", err, buf.Bytes())
	}
	out := buf.String()
	// Every span contributes a modeled event and a wall event, each
	// carrying the request ID.
	if got := bytes.Count(buf.Bytes(), []byte(`"request_id":"req-1"`)); got != 2 {
		t.Fatalf("req-1 appears in %d events, want 2 (vtime + wall):\n%s", got, out)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"cat":"wall-query"`)) {
		t.Fatalf("missing wall-track event:\n%s", out)
	}
}

// TestRingConcurrentStress drives adds, lookups and exports in
// parallel; run under -race this pins the locking discipline.
func TestRingConcurrentStress(t *testing.T) {
	r := NewRing(32, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				r.Add(ringEntry(id, time.Duration(i)*time.Microsecond, i%17 == 0))
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				r.Get(fmt.Sprintf("w%d-%d", w, i))
				r.Recent()
				r.Slow()
				r.Stats()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if entries := r.Recent(); len(entries) > 0 {
				ExportChromeEntries(&buf, entries)
			}
		}
	}()
	wg.Wait()
	added, retained, slow := r.Stats()
	if added != 2000 {
		t.Fatalf("added = %d, want 2000", added)
	}
	if retained != 32 || slow > 8 {
		t.Fatalf("retention bounds broken: retained=%d slow=%d", retained, slow)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Add(ringEntry("x", time.Millisecond, true))
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil ring cannot retain")
	}
	if r.Recent() != nil || r.Slow() != nil {
		t.Fatal("nil ring must return nil slices")
	}
}
