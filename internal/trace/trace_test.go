package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"blugpu/internal/vtime"
)

func TestZeroContextIsNoop(t *testing.T) {
	var c Context
	if c.Enabled() {
		t.Error("zero context reports Enabled")
	}
	if c.ID() != 0 {
		t.Errorf("zero context ID = %d", c.ID())
	}
	// None of these may panic or allocate spans anywhere.
	child := c.Begin("op", "x", 0)
	if child.Enabled() {
		t.Error("Begin on a zero context returned an enabled context")
	}
	c.End(1, Str("k", "v"))
	c.Emit("op", "y", 0, vtime.Millisecond)
	c.Annotate(Int("n", 3))

	var tr *Tracer
	if got := tr.StartQuery("q", 0); got.Enabled() {
		t.Error("StartQuery on nil tracer returned an enabled context")
	}
	tr.RecordDeviceEvent(1, 0, "kernel", "k", 8, vtime.Millisecond)
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New()
	q := tr.StartQuery("", 1.0)
	if !q.Enabled() {
		t.Fatal("query context disabled")
	}
	op := q.Begin("op", "groupby", 1.0)
	op.Emit("eval", "hash", 1.0, vtime.Duration(0.25), Int("rows", 100))
	op.End(1.5, Str("path", "gpu"))
	q.End(2.0, Int("rows", 10))

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	root, opSpan, leaf := spans[0], spans[1], spans[2]
	if root.Name != "q1" || root.Cat != "query" || root.Parent != 0 || root.Depth != 0 {
		t.Errorf("root = %+v", root)
	}
	if root.Query != 1 || opSpan.Query != 1 || leaf.Query != 1 {
		t.Error("query sequence numbers differ within one tree")
	}
	if opSpan.Parent != root.ID || opSpan.Depth != 1 {
		t.Errorf("op span parentage = parent %d depth %d", opSpan.Parent, opSpan.Depth)
	}
	if leaf.Parent != opSpan.ID || leaf.Depth != 2 {
		t.Errorf("emitted leaf parentage = parent %d depth %d", leaf.Parent, leaf.Depth)
	}
	if leaf.Start != 1.0 || leaf.End != 1.25 {
		t.Errorf("leaf bounds = [%v, %v]", leaf.Start, leaf.End)
	}
	if root.End != 2.0 || opSpan.End != 1.5 {
		t.Errorf("ends = root %v op %v", root.End, opSpan.End)
	}
	if len(opSpan.Attrs) != 1 || opSpan.Attrs[0].Key != "path" || opSpan.Attrs[0].Value() != "gpu" {
		t.Errorf("op attrs = %v", opSpan.Attrs)
	}
	if tr.Queries() != 1 {
		t.Errorf("queries = %d", tr.Queries())
	}
}

func TestEndTwiceOnlyAppendsAttrs(t *testing.T) {
	tr := New()
	q := tr.StartQuery("q", 0)
	q.End(1.0)
	q.End(5.0, Str("late", "attr"))
	s := tr.Spans()[0]
	if s.End != 1.0 {
		t.Errorf("second End moved the bound to %v", s.End)
	}
	if len(s.Attrs) != 1 || s.Attrs[0].Key != "late" {
		t.Errorf("attrs = %v", s.Attrs)
	}
}

func TestDeviceEventLayout(t *testing.T) {
	tr := New()
	q := tr.StartQuery("q", 0)
	g := q.Begin("gpu", "attempt", 1.0)

	// Kernels and transfers become leaves laid out sequentially from the
	// parent's start.
	tr.RecordDeviceEvent(g.ID(), 1, "kernel", "groupby_k1", 64, vtime.Duration(0.5))
	tr.RecordDeviceEvent(g.ID(), 1, "h2d", "stage", 4096, vtime.Duration(0.25))
	// Reserve events are dropped; faults and reserve-fails become attrs.
	tr.RecordDeviceEvent(g.ID(), 1, "reserve", "", 128, 0)
	tr.RecordDeviceEvent(g.ID(), 1, "fault", "kernel-fault", 0, 0)
	tr.RecordDeviceEvent(g.ID(), 1, "reserve-fail", "", 1024, 0)
	// Unknown parent: orphan.
	tr.RecordDeviceEvent(9999, 0, "kernel", "lost", 0, 0)
	tr.RecordDeviceEvent(0, 0, "kernel", "untraced", 0, 0)

	spans := tr.Spans()
	// query, gpu attempt, kernel leaf, transfer leaf, orphan-counted events
	// add nothing.
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	k, x := spans[2], spans[3]
	if k.Cat != "kernel" || k.Name != "groupby_k1" || k.Start != 1.0 || k.End != 1.5 {
		t.Errorf("kernel leaf = %+v", k)
	}
	if x.Cat != "transfer" || x.Name != "h2d" || x.Start != 1.5 || x.End != 1.75 {
		t.Errorf("transfer leaf = %+v", x)
	}
	for _, leaf := range []Span{k, x} {
		var device, bytes bool
		for _, a := range leaf.Attrs {
			device = device || (a.Key == "device" && a.Int == 1)
			bytes = bytes || a.Key == "bytes"
		}
		if !device || !bytes {
			t.Errorf("%s leaf missing device/bytes attrs: %v", leaf.Cat, leaf.Attrs)
		}
	}
	gs := spans[1]
	var fault, rfail bool
	for _, a := range gs.Attrs {
		fault = fault || (a.Key == "fault" && a.Str == "kernel-fault")
		rfail = rfail || (a.Key == "reserve-fail-bytes" && a.Int == 1024)
	}
	if !fault || !rfail {
		t.Errorf("gpu span attrs = %v", gs.Attrs)
	}
	if tr.Orphans() != 2 {
		t.Errorf("orphans = %d, want 2", tr.Orphans())
	}
	if tr.FaultAttrCount() != 1 {
		t.Errorf("fault attrs = %d, want 1", tr.FaultAttrCount())
	}
}

func TestReset(t *testing.T) {
	tr := New()
	q := tr.StartQuery("q", 0)
	q.End(1)
	tr.RecordDeviceEvent(999, 0, "kernel", "k", 0, 0)
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Queries() != 0 || tr.Orphans() != 0 {
		t.Error("Reset left state behind")
	}
	// IDs restart, so a fresh query root is span 1 again.
	q2 := tr.StartQuery("q", 0)
	if q2.ID() != 1 {
		t.Errorf("post-reset first span ID = %d, want 1", q2.ID())
	}
}

// buildFixedTrace assembles the same span tree every call — the
// determinism fixture for the export tests.
func buildFixedTrace() *Tracer {
	tr := New()
	for i := 0; i < 3; i++ {
		q := tr.StartQuery(fmt.Sprintf("bd-%02d", i), vtime.Time(float64(i)))
		op := q.Begin("op", "groupby", vtime.Time(float64(i)))
		tr.RecordDeviceEvent(op.ID(), i%2, "kernel", "groupby_k1", 1<<uint(i+6), vtime.Duration(0.001))
		tr.RecordDeviceEvent(op.ID(), i%2, "fault", "h2d-fault", 0, 0)
		tr.RecordDeviceEvent(op.ID(), i%2, "fault", "kernel-fault", 0, 0)
		op.End(vtime.Time(float64(i)+0.5), Str("path", `gpu "raced"`), Int("groups", int64(10*i)))
		q.End(vtime.Time(float64(i)+1), Int("rows", int64(i)))
	}
	return tr
}

func TestExportChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildFixedTrace().ExportChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildFixedTrace().ExportChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical traces exported different bytes")
	}
	if err := ValidateChrome(a.Bytes()); err != nil {
		t.Errorf("export fails its own validator: %v", err)
	}
}

func TestExportChromeEscapingAndDuplicateKeys(t *testing.T) {
	tr := New()
	q := tr.StartQuery("q\"with\\quotes\nand\tctrl\x01", 0)
	q.End(1,
		Str("fault", "first"),
		Str("fault", "second"),
		Int("fault", 3))

	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("escaped export invalid: %v\n%s", err, buf.String())
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	args, ok := events[0]["args"].(map[string]any)
	if !ok {
		t.Fatalf("event has no args object: %v", events[0])
	}
	// Repeated keys must stay distinct so no fault attribute is lost in
	// JSON object semantics.
	if len(args) != 3 {
		t.Errorf("args = %v, want 3 distinct keys", args)
	}
	if args["fault"] != "first" || args["fault#1"] != "second" || args["fault#2"] != float64(3) {
		t.Errorf("duplicate-key renaming wrong: %v", args)
	}
	if name := events[0]["name"].(string); !strings.Contains(name, `"with\quotes`) {
		t.Errorf("name round-trip lost characters: %q", name)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not-json":    `{"name": "x"}`,
		"empty-array": `[]`,
		"no-name":     `[{"cat":"c","ph":"X","ts":0,"dur":0,"pid":1,"tid":0}]`,
		"no-cat":      `[{"name":"n","ph":"X","ts":0,"dur":0,"pid":1,"tid":0}]`,
		"bad-ph":      `[{"name":"n","cat":"c","ph":"B","ts":0,"dur":0,"pid":1,"tid":0}]`,
		"neg-ts":      `[{"name":"n","cat":"c","ph":"X","ts":-1,"dur":0,"pid":1,"tid":0}]`,
		"no-dur":      `[{"name":"n","cat":"c","ph":"X","ts":0,"pid":1,"tid":0}]`,
		"no-pid":      `[{"name":"n","cat":"c","ph":"X","ts":0,"dur":0,"tid":0}]`,
	}
	for name, data := range cases {
		if err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted %s", name, data)
		}
	}
	ok := `[{"name":"n","cat":"c","ph":"X","ts":0,"dur":0,"pid":1,"tid":0}]`
	if err := ValidateChrome([]byte(ok)); err != nil {
		t.Errorf("validator rejected minimal valid event: %v", err)
	}
}

func TestWriteFlame(t *testing.T) {
	var buf bytes.Buffer
	buildFixedTrace().WriteFlame(&buf)
	out := buf.String()
	for _, want := range []string{"query bd-00", "query bd-02", "op:groupby", "kernel:groupby_k1", "fault=h2d-fault", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("flame summary missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentStress hammers one tracer from many goroutines — span
// begin/end/annotate, device events, exports and snapshots all racing.
// Run under -race this is the data-race check for the whole package.
func TestConcurrentStress(t *testing.T) {
	tr := New()
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				at := vtime.Time(float64(w) + float64(i)/perWorker)
				q := tr.StartQuery(fmt.Sprintf("w%d-q%d", w, i), at)
				op := q.Begin("op", "groupby", at)
				tr.RecordDeviceEvent(op.ID(), w%2, "kernel", "k", 64, vtime.Microsecond)
				tr.RecordDeviceEvent(op.ID(), w%2, "fault", "kernel-fault", 0, 0)
				op.Emit("eval", "hash", at, vtime.Microsecond, Int("rows", int64(i)))
				op.Annotate(Str("path", "gpu"))
				op.End(at.Add(vtime.Millisecond))
				q.End(at.Add(2 * vtime.Millisecond))
			}
		}(w)
	}
	// Readers race the writers: snapshot and export continuously.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = tr.Spans()
				_ = tr.ExportChrome(io.Discard)
				_ = tr.FaultAttrCount()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := tr.Queries(); got != workers*perWorker {
		t.Errorf("queries = %d, want %d", got, workers*perWorker)
	}
	// 4 spans per iteration: query, op, kernel leaf, emitted eval.
	if got := len(tr.Spans()); got != 4*workers*perWorker {
		t.Errorf("spans = %d, want %d", got, 4*workers*perWorker)
	}
	if got := tr.FaultAttrCount(); got != workers*perWorker {
		t.Errorf("fault attrs = %d, want %d", got, workers*perWorker)
	}
	if tr.Orphans() != 0 {
		t.Errorf("orphans = %d", tr.Orphans())
	}
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("post-stress export invalid: %v", err)
	}
}
