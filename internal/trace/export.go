package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
	"unicode/utf8"

	"blugpu/internal/vtime"
)

// ExportChrome writes the span set as a Chrome trace-event JSON array
// (loadable in chrome://tracing or Perfetto). Every span becomes one
// complete ("ph":"X") event:
//
//   - ts/dur are the span's virtual-time bounds in microseconds,
//   - pid is the query sequence number (each query gets its own track
//     group), tid is the span's tree depth,
//   - args carries the attributes in recording order.
//
// Only virtual time is exported, so a fixed-seed run produces
// byte-identical output; wall-clock bounds appear in WriteFlame instead.
func (t *Tracer) ExportChrome(w io.Writer) error {
	spans := t.Spans()
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	for i, s := range spans {
		if i > 0 {
			bw.WriteString(",\n")
		}
		dur := s.End.Sub(s.Start)
		if dur < 0 {
			dur = 0
		}
		fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d`,
			jsonString(s.Name), jsonString(s.Cat),
			float64(s.Start)*1e6, dur.Seconds()*1e6, s.Query, s.Depth)
		if len(s.Attrs) > 0 {
			bw.WriteString(`,"args":{`)
			for j, a := range s.Attrs {
				if j > 0 {
					bw.WriteByte(',')
				}
				key := a.Key
				if j > 0 && duplicateKeyBefore(s.Attrs, j) {
					key = fmt.Sprintf("%s#%d", a.Key, j)
				}
				bw.WriteString(jsonString(key))
				bw.WriteByte(':')
				if a.IsInt {
					fmt.Fprintf(bw, "%d", a.Int)
				} else {
					bw.WriteString(jsonString(a.Str))
				}
			}
			bw.WriteByte('}')
		}
		bw.WriteByte('}')
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// duplicateKeyBefore reports whether attrs[j].Key already appeared at a
// lower index (repeated fault attributes must stay distinct JSON keys).
func duplicateKeyBefore(attrs []Attr, j int) bool {
	for i := 0; i < j; i++ {
		if attrs[i].Key == attrs[j].Key {
			return true
		}
	}
	return false
}

// jsonString encodes s as a JSON string literal. Hand-rolled so the
// byte-stable golden test does not depend on encoding/json's escaping
// choices across Go versions.
func jsonString(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for _, r := range s {
		switch r {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			if r < 0x20 {
				buf = append(buf, []byte(fmt.Sprintf(`\u%04x`, r))...)
			} else {
				buf = utf8.AppendRune(buf, r)
			}
		}
	}
	return string(append(buf, '"'))
}

// chromeEvent mirrors the trace-event fields ValidateChrome checks.
type chromeEvent struct {
	Name *string        `json:"name"`
	Cat  *string        `json:"cat"`
	Ph   *string        `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int64         `json:"pid"`
	Tid  *int64         `json:"tid"`
	Args map[string]any `json:"args"`
}

// ValidateChrome checks that data is a well-formed Chrome trace-event
// JSON array of complete events: every event must carry name, cat,
// ph=="X", non-negative ts and dur, and pid/tid. It is the schema check
// behind `make trace-smoke`.
func ValidateChrome(data []byte) error {
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace: not a JSON event array: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace: empty event array")
	}
	for i, e := range events {
		switch {
		case e.Name == nil || *e.Name == "":
			return fmt.Errorf("trace: event %d: missing name", i)
		case e.Cat == nil || *e.Cat == "":
			return fmt.Errorf("trace: event %d: missing cat", i)
		case e.Ph == nil || *e.Ph != "X":
			return fmt.Errorf("trace: event %d: ph must be \"X\"", i)
		case e.Ts == nil || *e.Ts < 0:
			return fmt.Errorf("trace: event %d: missing or negative ts", i)
		case e.Dur == nil || *e.Dur < 0:
			return fmt.Errorf("trace: event %d: missing or negative dur", i)
		case e.Pid == nil || e.Tid == nil:
			return fmt.Errorf("trace: event %d: missing pid/tid", i)
		}
	}
	return nil
}

// WriteFlame writes a plain-text per-query flame summary: each query
// root followed by its span tree, indented by depth, with virtual-time
// durations, percentage of the query, and the root's wall-clock cost.
func (t *Tracer) WriteFlame(w io.Writer) {
	spans := t.Spans()
	children := make(map[SpanID][]int, len(spans))
	var roots []int
	for i, s := range spans {
		if s.Parent == 0 {
			roots = append(roots, i)
		} else {
			children[s.Parent] = append(children[s.Parent], i)
		}
	}
	var dump func(idx int, rootDur vtime.Duration)
	dump = func(idx int, rootDur vtime.Duration) {
		s := spans[idx]
		d := s.End.Sub(s.Start)
		pct := 0.0
		if rootDur > 0 {
			pct = d.Seconds() / rootDur.Seconds() * 100
		}
		indent := 2 * s.Depth
		fmt.Fprintf(w, "%*s%-*s %12s %5.1f%%", indent, "", 36-indent, s.Cat+":"+s.Name, d, pct)
		for _, a := range s.Attrs {
			fmt.Fprintf(w, "  %s=%s", a.Key, a.Value())
		}
		fmt.Fprintln(w)
		for _, c := range children[s.ID] {
			dump(c, rootDur)
		}
	}
	for _, r := range roots {
		s := spans[r]
		d := s.End.Sub(s.Start)
		fmt.Fprintf(w, "query %s  modeled=%s wall=%s\n", s.Name, d, s.WallEnd.Sub(s.WallStart).Round(time.Microsecond))
		for _, c := range children[s.ID] {
			dump(c, d)
		}
	}
}
