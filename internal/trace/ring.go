package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// RingEntry is one retained query trace: the query's complete span
// subtree snapshotted at completion, keyed by its request ID.
type RingEntry struct {
	RequestID string
	Query     string // resolved query name
	Session   string
	Class     string
	Seq       uint64 // tracer query sequence the spans belong to
	Wall      time.Duration
	At        time.Time // completion time
	Slow      bool      // over the server's slow-query threshold
	Spans     []Span
}

// Ring is the always-on sampled live tracer: a bounded ring buffer of
// recent query traces plus a separate bounded top-K set of slow ones,
// which slow-query retention forces into regardless of recency. Safe
// for concurrent use (queries add while scrapes read).
type Ring struct {
	mu      sync.Mutex
	cap     int
	slowCap int
	recent  []RingEntry // ring; next points at the oldest slot
	next    int
	slow    []RingEntry // kept sorted by Wall descending
	added   uint64
}

// NewRing builds a Ring retaining up to capacity recent traces and
// slowCap slow ones (defaults 64 and 16).
func NewRing(capacity, slowCap int) *Ring {
	if capacity <= 0 {
		capacity = 64
	}
	if slowCap <= 0 {
		slowCap = 16
	}
	return &Ring{cap: capacity, slowCap: slowCap}
}

// Add retains one completed query trace. Slow entries additionally
// enter the top-K slow set, evicting its fastest member when full.
func (r *Ring) Add(e RingEntry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.added++
	if len(r.recent) < r.cap {
		r.recent = append(r.recent, e)
	} else {
		r.recent[r.next] = e
		r.next = (r.next + 1) % r.cap
	}
	if !e.Slow {
		return
	}
	i := sort.Search(len(r.slow), func(i int) bool { return r.slow[i].Wall < e.Wall })
	r.slow = append(r.slow, RingEntry{})
	copy(r.slow[i+1:], r.slow[i:])
	r.slow[i] = e
	if len(r.slow) > r.slowCap {
		r.slow = r.slow[:r.slowCap]
	}
}

// Get returns the retained trace for a request ID. The slow set is
// searched first (forced retention outlives the recency ring), then the
// ring newest-first.
func (r *Ring) Get(requestID string) (RingEntry, bool) {
	if r == nil {
		return RingEntry{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.slow {
		if e.RequestID == requestID {
			return e, true
		}
	}
	n := len(r.recent)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		e := r.recent[((r.next-1-i)%n+n)%n]
		if e.RequestID == requestID {
			return e, true
		}
	}
	return RingEntry{}, false
}

// Recent returns the retained traces, newest first.
func (r *Ring) Recent() []RingEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.recent)
	out := make([]RingEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.recent[((r.next-1-i)%n+n)%n])
	}
	return out
}

// Slow returns the retained slow traces, slowest first.
func (r *Ring) Slow() []RingEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RingEntry(nil), r.slow...)
}

// Stats returns lifetime adds and the current retention counts.
func (r *Ring) Stats() (added uint64, retained, slow int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added, len(r.recent), len(r.slow)
}

// ExportChrome writes the retained traces for entries as one Chrome
// trace-event JSON array. Each span contributes two complete events:
// its modeled virtual-time interval (cat as recorded, tid = depth) and,
// when wall bounds were captured, its wall-clock interval (cat prefixed
// "wall-", tid = depth+100 so the wall track groups below the modeled
// one inside the same query's pid). Wall timestamps are relative to the
// earliest wall start across the exported entries, so ts stays
// non-negative and the file is self-contained.
func ExportChromeEntries(w io.Writer, entries []RingEntry) error {
	var base time.Time
	for _, e := range entries {
		for _, s := range e.Spans {
			if s.WallStart.IsZero() {
				continue
			}
			if base.IsZero() || s.WallStart.Before(base) {
				base = s.WallStart
			}
		}
	}
	first := true
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	writeEvent := func(name, cat string, tsUs, durUs float64, pid uint64, tid int, attrs []Attr, reqID string) error {
		if durUs < 0 {
			durUs = 0
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		if _, err := fmt.Fprintf(w, `%s{"name":%s,"cat":%s,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d`,
			sep, jsonString(name), jsonString(cat), tsUs, durUs, pid, tid); err != nil {
			return err
		}
		io.WriteString(w, `,"args":{`)
		fmt.Fprintf(w, `%s:%s`, jsonString("request_id"), jsonString(reqID))
		for j, a := range attrs {
			io.WriteString(w, ",")
			key := a.Key
			// The injected request_id claims its key first; suffix any
			// colliding span attr like a repeated attr key.
			if key == "request_id" || duplicateKeyBefore(attrs, j) {
				key = fmt.Sprintf("%s#%d", a.Key, j)
			}
			io.WriteString(w, jsonString(key))
			io.WriteString(w, ":")
			if a.IsInt {
				fmt.Fprintf(w, "%d", a.Int)
			} else {
				io.WriteString(w, jsonString(a.Str))
			}
		}
		_, err := io.WriteString(w, "}}")
		return err
	}
	for _, e := range entries {
		for _, s := range e.Spans {
			dur := s.End.Sub(s.Start)
			if err := writeEvent(s.Name, s.Cat, float64(s.Start)*1e6, dur.Seconds()*1e6,
				s.Query, s.Depth, s.Attrs, e.RequestID); err != nil {
				return err
			}
			if s.WallStart.IsZero() {
				continue
			}
			wallTs := float64(s.WallStart.Sub(base)) / float64(time.Microsecond)
			wallDur := float64(s.WallEnd.Sub(s.WallStart)) / float64(time.Microsecond)
			if err := writeEvent(s.Name, "wall-"+s.Cat, wallTs, wallDur,
				s.Query, s.Depth+100, s.Attrs, e.RequestID); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
