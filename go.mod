module blugpu

go 1.22
